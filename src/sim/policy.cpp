#include "sim/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace corral {

PlanLookup::PlanLookup(std::span<const JobSpec> planned_jobs,
                       const Plan& plan) {
  require(planned_jobs.size() == plan.jobs.size(),
          "PlanLookup: job/plan size mismatch");
  for (std::size_t i = 0; i < planned_jobs.size(); ++i) {
    by_job_id_.emplace(planned_jobs[i].id, plan.jobs[i]);
  }
}

const PlannedJob* PlanLookup::find(int job_id) const {
  const auto it = by_job_id_.find(job_id);
  return it == by_job_id_.end() ? nullptr : &it->second;
}

std::unique_ptr<BlockPlacementPolicy> YarnCapacityPolicy::input_placement(
    const JobSpec&) {
  return std::make_unique<DefaultPlacement>();
}

std::vector<int> YarnCapacityPolicy::allowed_racks(
    const JobSpec&, const Dfs&, const std::vector<const FileLayout*>&,
    Rng&) {
  return {};
}

double YarnCapacityPolicy::priority(const JobSpec& job) const {
  return job.arrival;
}

CorralPolicy::CorralPolicy(const PlanLookup* plan) : plan_(plan) {
  require(plan_ != nullptr, "CorralPolicy: plan must not be null");
}

std::unique_ptr<BlockPlacementPolicy> CorralPolicy::input_placement(
    const JobSpec& job) {
  const PlannedJob* planned = plan_->find(job.id);
  if (planned == nullptr || !job.recurring) {
    // Ad hoc jobs use regular HDFS policies (§3.1).
    return std::make_unique<DefaultPlacement>();
  }
  return std::make_unique<CorralPlacement>(planned->racks);
}

std::vector<int> CorralPolicy::allowed_racks(
    const JobSpec& job, const Dfs&, const std::vector<const FileLayout*>&,
    Rng&) {
  const PlannedJob* planned = plan_->find(job.id);
  if (planned == nullptr || !job.recurring) return {};
  return planned->racks;
}

double CorralPolicy::priority(const JobSpec& job) const {
  // Planned jobs are ordered by their planned start time T_j (which orders
  // exactly like the planner's priority rank p_j); ad hoc jobs interleave
  // by arrival time on the same axis, so they use whatever slots the plan
  // leaves idle without being starved behind the entire plan.
  const PlannedJob* planned = plan_->find(job.id);
  if (planned == nullptr || !job.recurring) return job.arrival;
  return planned->start_time;
}

CorralRepairPolicy::CorralRepairPolicy(std::vector<JobSpec> recurring_jobs,
                                       const ClusterConfig& cluster,
                                       const PlannerConfig& planner_config,
                                       double rack_health_threshold)
    : jobs_(std::move(recurring_jobs)),
      cluster_(cluster),
      planner_config_(planner_config),
      rack_health_threshold_(rack_health_threshold) {
  const Plan plan = plan_offline(jobs_, cluster_, planner_config_);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    plan_.emplace(jobs_[i].id, plan.jobs[i]);
  }
}

const PlannedJob* CorralRepairPolicy::find(const JobSpec& job) const {
  if (!job.recurring) return nullptr;
  const auto it = plan_.find(job.id);
  return it == plan_.end() ? nullptr : &it->second;
}

std::unique_ptr<BlockPlacementPolicy> CorralRepairPolicy::input_placement(
    const JobSpec& job) {
  const PlannedJob* planned = find(job);
  if (planned == nullptr) return std::make_unique<DefaultPlacement>();
  return std::make_unique<CorralPlacement>(planned->racks);
}

std::vector<int> CorralRepairPolicy::allowed_racks(
    const JobSpec& job, const Dfs&, const std::vector<const FileLayout*>&,
    Rng&) {
  submitted_[job.id] = true;
  const PlannedJob* planned = find(job);
  if (planned == nullptr) return {};
  return planned->racks;
}

double CorralRepairPolicy::priority(const JobSpec& job) const {
  const PlannedJob* planned = find(job);
  if (planned == nullptr) return job.arrival;
  return planned->start_time;
}

void CorralRepairPolicy::on_rack_degraded(int, const ClusterTopology& topology,
                                          Seconds now) {
  std::vector<JobSpec> pending;
  for (const JobSpec& job : jobs_) {
    const auto it = submitted_.find(job.id);
    if (it == submitted_.end() || !it->second) pending.push_back(job);
  }
  if (pending.empty()) return;

  const std::vector<int> healthy =
      topology.usable_racks(rack_health_threshold_);
  if (healthy.empty()) {
    // Nothing left to plan on: release the pending jobs to run
    // unconstrained wherever capacity survives.
    for (const JobSpec& job : pending) plan_.erase(job.id);
    ++repairs_;
    return;
  }
  Plan repaired = plan_offline(pending, cluster_, planner_config_, healthy);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PlannedJob entry = repaired.jobs[i];
    // The repaired plan starts its clock at the repair instant; offsetting
    // keeps repaired jobs prioritized after the already-dispatched prefix
    // of the original plan.
    entry.start_time += now;
    plan_[pending[i].id] = entry;
  }
  ++repairs_;
}

void CorralRepairPolicy::on_rack_recovered(int, const ClusterTopology&,
                                           Seconds) {
  // Recovered racks re-enter the planning universe at the next repair; the
  // simulator re-arms the constraints of already-planned jobs itself.
}

LocalShufflePolicy::LocalShufflePolicy(const PlanLookup* plan)
    : plan_(plan) {
  require(plan_ != nullptr, "LocalShufflePolicy: plan must not be null");
}

std::unique_ptr<BlockPlacementPolicy> LocalShufflePolicy::input_placement(
    const JobSpec&) {
  // The whole point of this baseline: Corral's task placement, HDFS's
  // random data placement (§6.1).
  return std::make_unique<DefaultPlacement>();
}

std::vector<int> LocalShufflePolicy::allowed_racks(
    const JobSpec& job, const Dfs&, const std::vector<const FileLayout*>&,
    Rng&) {
  const PlannedJob* planned = plan_->find(job.id);
  if (planned == nullptr || !job.recurring) return {};
  return planned->racks;
}

double LocalShufflePolicy::priority(const JobSpec& job) const {
  const PlannedJob* planned = plan_->find(job.id);
  if (planned == nullptr || !job.recurring) return job.arrival;
  return planned->start_time;
}

ShuffleWatcherPolicy::ShuffleWatcherPolicy(int slots_per_rack)
    : slots_per_rack_(slots_per_rack) {
  require(slots_per_rack_ > 0,
          "ShuffleWatcherPolicy: slots_per_rack must be positive");
}

std::unique_ptr<BlockPlacementPolicy> ShuffleWatcherPolicy::input_placement(
    const JobSpec&) {
  return std::make_unique<DefaultPlacement>();
}

std::vector<int> ShuffleWatcherPolicy::allowed_racks(
    const JobSpec& job, const Dfs& dfs,
    const std::vector<const FileLayout*>& input_files, Rng&) {
  const int num_racks = dfs.topology().racks();
  // Choose the rack count that minimizes estimated cross-rack bytes:
  // remote input reads shrink with r, shuffle spillover grows with r.
  const double input = job.total_input();
  const double shuffle = job.total_shuffle();
  int needed = 1;
  double best_cost = std::numeric_limits<double>::max();
  for (int r = 1; r <= num_racks; ++r) {
    const double cost =
        input * (1.0 - static_cast<double>(r) / num_racks) +
        shuffle * (static_cast<double>(r - 1) / r);
    if (cost < best_cost - 1e-9) {
      best_cost = cost;
      needed = r;
    }
  }
  if (needed >= num_racks) return {};

  // Per-rack bytes of this job's input.
  std::vector<Bytes> input_by_rack(static_cast<std::size_t>(num_racks), 0.0);
  for (const FileLayout* file : input_files) {
    for (const auto& chunk : file->chunks) {
      for (int m : chunk.machines) {
        input_by_rack[static_cast<std::size_t>(dfs.topology().rack_of(m))] +=
            chunk.bytes / static_cast<double>(chunk.machines.size());
      }
    }
  }
  // Rank racks by how much of the job's input they hold, bucketed coarsely
  // so near-ties resolve toward low rack ids. ShuffleWatcher is oblivious
  // to what other jobs chose, so with HDFS's near-uniform spread many jobs
  // herd onto the same racks — the contention pathology §6.2.1 observes
  // ("ends up scheduling several large jobs on the same subset of racks").
  const Bytes bucket = std::max<Bytes>(input / (2.0 * num_racks), 1.0);
  std::vector<int> racks(static_cast<std::size_t>(num_racks));
  for (int r = 0; r < num_racks; ++r) racks[static_cast<std::size_t>(r)] = r;
  std::sort(racks.begin(), racks.end(), [&](int a, int b) {
    const double ba =
        std::floor(input_by_rack[static_cast<std::size_t>(a)] / bucket);
    const double bb =
        std::floor(input_by_rack[static_cast<std::size_t>(b)] / bucket);
    if (ba != bb) return ba > bb;
    return a < b;
  });
  racks.resize(static_cast<std::size_t>(needed));
  std::sort(racks.begin(), racks.end());
  return racks;
}

double ShuffleWatcherPolicy::priority(const JobSpec& job) const {
  return job.arrival;
}

}  // namespace corral
