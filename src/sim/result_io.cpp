#include "sim/result_io.h"

#include <fstream>
#include <iomanip>

#include "util/check.h"
#include "util/csv.h"

namespace corral {
namespace {

// Names pass through RFC 4180 escaping (util/csv.h) so commas, quotes and
// newlines in workload names survive a round trip through the CSV.
std::string sanitize_name(const std::string& name) {
  return csv_escape(name.empty() ? std::string("unnamed") : name);
}

}  // namespace

void write_results_csv(std::ostream& out, const SimResult& result) {
  out << "job_id,name,recurring,arrival,finish,completion,"
         "cross_rack_bytes,compute_seconds,num_reduce_tasks,failed,"
         "tasks_killed,maps_rerun,speculative_launched,"
         "speculative_wasted_seconds\n";
  out << std::setprecision(17);
  for (const JobResult& job : result.jobs) {
    out << job.job_id << ',' << sanitize_name(job.name) << ','
        << (job.recurring ? 1 : 0) << ',' << job.arrival << ',' << job.finish
        << ',' << job.completion_time() << ',' << job.cross_rack_bytes << ','
        << job.compute_seconds << ',' << job.reduce_durations.size() << ','
        << (job.failed ? 1 : 0) << ',' << job.tasks_killed << ','
        << job.maps_rerun << ',' << job.speculative_launched << ','
        << job.speculative_wasted_seconds << "\n";
  }
}

void write_results_csv_file(const std::string& path,
                            const SimResult& result) {
  std::ofstream out(path);
  require(out.good(), "write_results_csv_file: cannot open output file");
  write_results_csv(out, result);
  require(out.good(), "write_results_csv_file: write failed");
}

}  // namespace corral
