#include "sim/metrics.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace corral {

const JobResult* SimResult::find_job(int job_id) const {
  for (const JobResult& job : jobs) {
    if (job.job_id == job_id) return &job;
  }
  return nullptr;
}

std::vector<double> SimResult::completion_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const JobResult& job : jobs) {
    if (!job.failed) out.push_back(job.completion_time());
  }
  return out;
}

double SimResult::avg_completion() const {
  const auto times = completion_times();
  return mean(times);
}

double SimResult::median_completion() const {
  const auto times = completion_times();
  require(!times.empty(), "median_completion: no jobs");
  return percentile(times, 50);
}

std::vector<double> SimResult::all_reduce_durations() const {
  std::vector<double> out;
  for (const JobResult& job : jobs) {
    out.insert(out.end(), job.reduce_durations.begin(),
               job.reduce_durations.end());
  }
  return out;
}

std::vector<double> SimResult::per_job_avg_reduce_time() const {
  std::vector<double> out;
  for (const JobResult& job : jobs) {
    if (!job.reduce_durations.empty()) {
      out.push_back(mean(job.reduce_durations));
    }
  }
  return out;
}

double SimResult::avg_uplink_utilization() const {
  return mean(rack_uplink_utilization);
}

double reduction(double baseline, double value) {
  require(baseline != 0, "reduction: zero baseline");
  return (baseline - value) / baseline;
}

void record_sim_metrics(const SimResult& result,
                        obs::MetricsRegistry& registry) {
  registry.counter("sim.jobs").add(static_cast<double>(result.jobs.size()));
  registry.counter("sim.jobs_failed").add(result.jobs_failed);
  registry.counter("sim.tasks_killed").add(result.tasks_killed);
  registry.counter("sim.maps_rerun").add(result.maps_rerun);
  registry.counter("sim.speculative_launched")
      .add(result.speculative_launched);
  registry.counter("sim.speculative_wasted_seconds")
      .add(result.speculative_wasted_seconds);
  registry.counter("sim.stragglers_injected").add(result.stragglers_injected);
  registry.counter("sim.chunks_lost").add(result.chunks_lost);
  registry.counter("sim.bytes_rereplicated").add(result.bytes_rereplicated);
  registry.counter("sim.cross_rack_bytes")
      .add(result.total_cross_rack_bytes);

  registry.gauge("sim.makespan_s").set(result.makespan);
  registry.gauge("sim.degraded_time_s").set(result.degraded_time);
  registry.gauge("sim.total_compute_hours").set(result.total_compute_hours);
  registry.gauge("sim.input_balance_cov").set(result.input_balance_cov);
  registry.gauge("sim.avg_uplink_utilization")
      .set(result.avg_uplink_utilization());

  // Buckets from 1s up: job completions span seconds to days.
  obs::HistogramOptions seconds_scale;
  seconds_scale.first_bound = 1.0;
  seconds_scale.growth = 2.0;
  seconds_scale.buckets = 24;
  obs::Histogram& completions =
      registry.histogram("sim.job_completion_s", seconds_scale);
  for (double t : result.completion_times()) completions.observe(t);
  obs::Histogram& reduces =
      registry.histogram("sim.reduce_duration_s", seconds_scale);
  for (const JobResult& job : result.jobs) {
    for (double t : job.reduce_durations) reduces.observe(t);
  }
}

}  // namespace corral
