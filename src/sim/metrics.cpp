#include "sim/metrics.h"

#include "util/check.h"

namespace corral {

std::vector<double> SimResult::completion_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const JobResult& job : jobs) {
    if (!job.failed) out.push_back(job.completion_time());
  }
  return out;
}

double SimResult::avg_completion() const {
  const auto times = completion_times();
  return mean(times);
}

double SimResult::median_completion() const {
  const auto times = completion_times();
  require(!times.empty(), "median_completion: no jobs");
  return percentile(times, 50);
}

std::vector<double> SimResult::all_reduce_durations() const {
  std::vector<double> out;
  for (const JobResult& job : jobs) {
    out.insert(out.end(), job.reduce_durations.begin(),
               job.reduce_durations.end());
  }
  return out;
}

std::vector<double> SimResult::per_job_avg_reduce_time() const {
  std::vector<double> out;
  for (const JobResult& job : jobs) {
    if (!job.reduce_durations.empty()) {
      out.push_back(mean(job.reduce_durations));
    }
  }
  return out;
}

double SimResult::avg_uplink_utilization() const {
  return mean(rack_uplink_utilization);
}

double reduction(double baseline, double value) {
  require(baseline != 0, "reduction: zero baseline");
  return (baseline - value) / baseline;
}

}  // namespace corral
