#include "jobs/dag.h"

#include <algorithm>

#include "util/check.h"

namespace corral {

std::vector<int> topological_order(int num_nodes,
                                   std::span<const DagEdge> edges) {
  require(num_nodes >= 0, "topological_order: negative node count");
  std::vector<int> indegree(static_cast<std::size_t>(num_nodes), 0);
  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(num_nodes));
  for (const DagEdge& e : edges) {
    require(e.from >= 0 && e.from < num_nodes && e.to >= 0 && e.to < num_nodes,
            "topological_order: edge index out of range");
    require(e.from != e.to, "topological_order: self-loop");
    adjacency[static_cast<std::size_t>(e.from)].push_back(e.to);
    ++indegree[static_cast<std::size_t>(e.to)];
  }
  std::vector<int> ready;
  for (int v = 0; v < num_nodes; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_nodes));
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int next : adjacency[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        ready.push_back(next);
      }
    }
  }
  require(static_cast<int>(order.size()) == num_nodes,
          "topological_order: graph has a cycle");
  return order;
}

CriticalPath critical_path(int num_nodes, std::span<const DagEdge> edges,
                           std::span<const double> node_weights) {
  require(static_cast<int>(node_weights.size()) == num_nodes,
          "critical_path: weight count must match node count");
  const std::vector<int> order = topological_order(num_nodes, edges);

  std::vector<std::vector<int>> incoming(static_cast<std::size_t>(num_nodes));
  for (const DagEdge& e : edges) {
    incoming[static_cast<std::size_t>(e.to)].push_back(e.from);
  }

  // Longest distance ending at each node, and the predecessor achieving it.
  std::vector<double> dist(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<int> pred(static_cast<std::size_t>(num_nodes), -1);
  for (int v : order) {
    double best = 0.0;
    int best_pred = -1;
    for (int p : incoming[static_cast<std::size_t>(v)]) {
      if (dist[static_cast<std::size_t>(p)] > best) {
        best = dist[static_cast<std::size_t>(p)];
        best_pred = p;
      }
    }
    dist[static_cast<std::size_t>(v)] =
        best + node_weights[static_cast<std::size_t>(v)];
    pred[static_cast<std::size_t>(v)] = best_pred;
  }

  CriticalPath result;
  if (num_nodes == 0) return result;
  int tail = 0;
  for (int v = 1; v < num_nodes; ++v) {
    if (dist[static_cast<std::size_t>(v)] >
        dist[static_cast<std::size_t>(tail)]) {
      tail = v;
    }
  }
  result.length = dist[static_cast<std::size_t>(tail)];
  for (int v = tail; v != -1; v = pred[static_cast<std::size_t>(v)]) {
    result.nodes.push_back(v);
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace corral
