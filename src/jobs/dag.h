// DAG utilities: topological order and critical paths.
//
// The latency response function of a DAG job is the sum of stage latencies
// along its critical path (§4.3). The paper finds the path with an efficient
// shortest-path style pass over the DAG; we do the same via a topological
// order, which is O(V + E).
#ifndef CORRAL_JOBS_DAG_H_
#define CORRAL_JOBS_DAG_H_

#include <span>
#include <vector>

namespace corral {

struct DagEdge {
  int from = 0;
  int to = 0;
};

// Returns a topological order of nodes 0..num_nodes-1.
// Throws std::invalid_argument if an edge index is out of range or the
// graph has a cycle.
std::vector<int> topological_order(int num_nodes,
                                   std::span<const DagEdge> edges);

struct CriticalPath {
  double length = 0.0;
  std::vector<int> nodes;  // in execution order
};

// Longest weighted path (node weights) from any source to any sink.
// Requires weights.size() == num_nodes and an acyclic graph.
CriticalPath critical_path(int num_nodes, std::span<const DagEdge> edges,
                           std::span<const double> node_weights);

}  // namespace corral

#endif  // CORRAL_JOBS_DAG_H_
