#include "jobs/job.h"

#include <algorithm>

#include "util/check.h"

namespace corral {

void MapReduceSpec::validate() const {
  require(input_bytes >= 0 && shuffle_bytes >= 0 && output_bytes >= 0,
          "MapReduceSpec: data sizes must be non-negative");
  require(num_maps >= 1, "MapReduceSpec: num_maps must be >= 1");
  require(num_reduces >= 0, "MapReduceSpec: num_reduces must be >= 0");
  require(map_rate > 0 && reduce_rate > 0,
          "MapReduceSpec: processing rates must be positive");
}

void PlacementSpec::validate() const {
  require(anti_affinity >= -1,
          "PlacementSpec: anti-affinity set id must be >= -1");
  if (resource_class.empty()) {
    require(resource_units == 0,
            "PlacementSpec: resource_units requires a resource class");
  } else {
    require(resource_units >= 1,
            "PlacementSpec: resource class '" + resource_class +
                "' needs resource_units >= 1");
  }
}

JobSpec JobSpec::map_reduce(int id, std::string name, MapReduceSpec stage,
                            Seconds arrival) {
  JobSpec job;
  job.id = id;
  job.name = std::move(name);
  if (stage.name.empty()) stage.name = job.name;
  job.stages.push_back(std::move(stage));
  job.arrival = arrival;
  return job;
}

int JobSpec::max_parallelism() const {
  int widest = 0;
  for (const MapReduceSpec& s : stages) {
    widest = std::max({widest, s.num_maps, s.num_reduces});
  }
  return widest;
}

Bytes JobSpec::total_input() const {
  Bytes total = 0;
  for (int s : source_stages()) {
    total += stages[static_cast<std::size_t>(s)].input_bytes;
  }
  return total;
}

Bytes JobSpec::total_shuffle() const {
  Bytes total = 0;
  for (const MapReduceSpec& s : stages) total += s.shuffle_bytes;
  return total;
}

Bytes JobSpec::total_output() const {
  Bytes total = 0;
  for (const MapReduceSpec& s : stages) total += s.output_bytes;
  return total;
}

int JobSpec::num_tasks() const {
  int total = 0;
  for (const MapReduceSpec& s : stages) total += s.num_maps + s.num_reduces;
  return total;
}

std::vector<int> JobSpec::source_stages() const {
  std::vector<bool> has_incoming(stages.size(), false);
  for (const DagEdge& e : edges) {
    if (e.to >= 0 && e.to < static_cast<int>(stages.size())) {
      has_incoming[static_cast<std::size_t>(e.to)] = true;
    }
  }
  std::vector<int> sources;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (!has_incoming[s]) sources.push_back(static_cast<int>(s));
  }
  return sources;
}

void JobSpec::validate() const {
  require(!stages.empty(), "JobSpec: at least one stage required");
  require(arrival >= 0.0, "JobSpec: arrival must be non-negative");
  placement.validate();
  for (const MapReduceSpec& s : stages) s.validate();
  // Throws on cycles or bad indices.
  (void)topological_order(static_cast<int>(stages.size()), edges);
}

}  // namespace corral
