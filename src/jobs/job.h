// Job model.
//
// Section 4.3 of the paper represents a MapReduce job by the 5-tuple
// <D_I, D_S, D_O, N_M, N_R> (input/shuffle/output bytes, map/reduce task
// counts) plus per-task processing rates B_M and B_R estimated from earlier
// runs. General DAG jobs (Hive/Tez, §4.3 "General DAGs") model every stage
// as one such MapReduce stage, linked by data dependencies.
#ifndef CORRAL_JOBS_JOB_H_
#define CORRAL_JOBS_JOB_H_

#include <string>
#include <vector>

#include "jobs/dag.h"
#include "util/units.h"

namespace corral {

// One MapReduce stage: the paper's 5-tuple plus processing rates.
struct MapReduceSpec {
  std::string name;
  Bytes input_bytes = 0;    // D_I
  Bytes shuffle_bytes = 0;  // D_S
  Bytes output_bytes = 0;   // D_O
  int num_maps = 1;         // N_M
  int num_reduces = 1;      // N_R
  // Average rate at which one map (reduce) task processes data; the paper
  // estimates these from previous runs of the same job.
  BytesPerSec map_rate = 50 * kMB;     // B_M
  BytesPerSec reduce_rate = 50 * kMB;  // B_R

  // Validates the invariants (non-negative sizes, positive task counts and
  // rates); throws std::invalid_argument otherwise.
  void validate() const;
};

// Placement constraints in the Shafiee–Ghaderi packing/placement style
// (docs/coflow.md "Placement constraints"). All three are hard feasibility
// filters for the planner's rack assignment; an unconstrained job keeps the
// defaults and planning is unchanged.
struct PlacementSpec {
  // Jobs sharing a non-negative set id must receive pairwise-disjoint rack
  // sets (availability domains). -1 = no set.
  int anti_affinity = -1;
  // Named per-rack resource (e.g. "gpu"): the job may only use racks
  // equipped with at least `resource_units` units of the class. Empty = no
  // resource requirement.
  std::string resource_class;
  int resource_units = 0;
  // The job's racks may not be assigned to any other job in the batch.
  bool rack_exclusive = false;

  bool constrained() const {
    return anti_affinity >= 0 || !resource_class.empty() || rack_exclusive;
  }

  // Field-level invariants (set id >= -1, units positive iff a class is
  // named); throws std::invalid_argument otherwise.
  void validate() const;
};

// A job: a DAG of MapReduce stages with an arrival time. A plain MapReduce
// job is the single-stage special case.
struct JobSpec {
  int id = 0;
  std::string name;
  std::vector<MapReduceSpec> stages;
  // Edges over stage indices; data produced by `from` is consumed by `to`.
  std::vector<DagEdge> edges;
  Seconds arrival = 0.0;
  // Recurring (or otherwise predictable) jobs are planned by Corral's
  // offline planner; ad hoc jobs are not (§3.1).
  bool recurring = true;
  // Hard placement constraints honored by every planner backend.
  PlacementSpec placement;

  static JobSpec map_reduce(int id, std::string name, MapReduceSpec stage,
                            Seconds arrival = 0.0);

  bool is_map_reduce() const { return stages.size() == 1 && edges.empty(); }

  // The widest stage determines how many slots the job can use at once.
  int max_parallelism() const;

  // Total bytes read from the distributed file system by source stages.
  Bytes total_input() const;
  // Total bytes moved in shuffles across all stages.
  Bytes total_shuffle() const;
  Bytes total_output() const;

  int num_tasks() const;

  // Stage indices with no incoming edge (they read job input from the DFS).
  std::vector<int> source_stages() const;

  // Validates stage specs and DAG shape (indices in range, acyclic);
  // throws std::invalid_argument otherwise.
  void validate() const;
};

}  // namespace corral

#endif  // CORRAL_JOBS_JOB_H_
