// One tenant of the control plane: the single-fleet epoch body of the
// original run_control_loop, extracted so it can be instantiated T times
// behind the multi-tenant service (ctrl/service.h) while the single-tenant
// API stays a thin wrapper over exactly one TenantLoop.
//
// A TenantLoop owns every piece of per-tenant mutable state — predictor
// histories, sticky planning sizes, the signature-keyed PlanCache, the
// memoized ResponseFunctionCache, the error-budget machine, the last-good
// fallback plan and the per-tenant chaos schedule — and advances it one
// epoch at a time via run_epoch(). The *driver* (run_control_loop or
// run_control_service) owns everything cross-cutting: which racks the
// tenant is granted this epoch, checkpointing, and crash handling.
//
// Determinism contract: a TenantLoop's outputs are a pure function of its
// (pipelines, config, seed, granted racks per epoch). Trace sinks are laid
// out per tenant at a fixed base — sink_base = ctrl track, sink_base+1+2e =
// epoch e's planner, sink_base+2+2e = epoch e's simulation — so merged
// traces are byte-identical regardless of which shard or thread ran the
// tenant. With sink_base 0 and an empty label prefix the layout (and every
// byte of output) reduces to the original single-tenant loop's.
#ifndef CORRAL_CTRL_TENANT_H_
#define CORRAL_CTRL_TENANT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "corral/latency_model.h"
#include "corral/planner.h"
#include "ctrl/chaos.h"
#include "ctrl/checkpoint.h"
#include "ctrl/control_loop.h"
#include "ctrl/plan_cache.h"
#include "ctrl/resilience.h"
#include "obs/trace.h"
#include "sim/batch.h"

namespace corral {

namespace ctrl_detail {

// Splitmix-style per-index stream separation, matching the seed derivation
// used elsewhere in the tree (one independent stream per epoch / pipeline /
// tenant).
std::uint64_t substream(std::uint64_t seed, std::uint64_t index);

// Racks down during this epoch, sorted, deduplicated.
std::vector<int> outage_racks_for_epoch(const ControlLoopConfig& config,
                                        int epoch);

// The non-config half of run_control_loop's input validation: at least one
// pipeline, valid references, finite positive timelines. `who` prefixes the
// thrown message (e.g. "run_control_loop").
void validate_pipelines(std::span<const RecurringPipeline> pipelines,
                        const std::string& who);

}  // namespace ctrl_detail

class TenantLoop {
 public:
  // `config` is borrowed and must outlive the loop. `seed` is this tenant's
  // base seed (epoch simulations derive substreams of it); `chaos_seed` 0
  // derives the chaos-schedule seed from `seed`. `sink_base` and
  // `label_prefix` place the tenant's trace sinks and labels; (0, "") is
  // bit-compatible with the pre-service single-tenant loop. `backend`
  // overrides config.planner_backend for this tenant (the multi-tenant
  // service's per-tenant planner choice); nullopt inherits the config's.
  // `net_policy` likewise overrides config.net_policy — the rate-allocation
  // policy this tenant's epoch simulations run under.
  TenantLoop(std::vector<RecurringPipeline> pipelines,
             const ControlLoopConfig& config, std::uint64_t seed,
             std::uint64_t chaos_seed, int sink_base,
             std::string label_prefix,
             std::optional<PlannerBackendKind> backend = std::nullopt,
             std::optional<NetPolicy> net_policy = std::nullopt);

  // Restores per-tenant state from a checkpoint section. Must run before
  // bind_trace and any run_epoch. Throws std::invalid_argument when the
  // section's pipeline count does not match this tenant's fleet.
  void restore_state(const CheckpointState& saved);

  // Fills the per-tenant fields of a checkpoint section. The driver-owned
  // fields (config_fingerprint, next_epoch, trace) are left untouched.
  void save_state(CheckpointState& state) const;

  // Creates the tenant's kCtrl trace recorder. Must run *after* a possible
  // restore_state + tracer restore replays old sinks into the tracer.
  void bind_trace();

  // Advances the tenant one epoch: predict -> plan (through the cache) ->
  // execute on `granted_racks` -> measure -> feedback. Machines of racks
  // outside the grant are failed in the simulation; the planner plans on
  // the granted subcluster. `outage` marks the epoch as an injected-outage
  // epoch in the report. Appends to (and returns a copy of) the report.
  EpochReport run_epoch(int epoch, std::span<const int> granted_racks,
                        bool outage, const BatchRunner& runner);

  // True when the tenant's chaos schedule crashes the process after
  // `epoch`. The driver decides what a crash means for the whole run.
  bool crash_after(int epoch) const;
  // Records the crash in the tenant's result and trace. Call after the
  // epoch's checkpoint was written, so a resumed run replays nothing.
  void note_crash(int epoch);

  // Totals over every recorded epoch. Call once, after the last epoch.
  ControlLoopResult finish();

  std::size_t pipeline_count() const { return pipelines_.size(); }

 private:
  const ControlLoopConfig& config_;
  std::vector<RecurringPipeline> pipelines_;
  std::uint64_t seed_;
  int sink_base_;
  std::string label_prefix_;

  PlannerConfig planner_config_;
  NetPolicy net_policy_;
  std::uint64_t planner_sig_;
  LatencyModelParams params_;
  ChaosSchedule chaos_schedule_;
  ErrorBudget budget_;
  PlanCache cache_;
  ResponseFunctionCache rf_cache_;

  ControlLoopResult result_;
  std::uint64_t prev_topology_ = 0;
  bool force_replan_ = false;  // set by a past epoch's drift detector
  // Sticky planning size per (pipeline, day kind): what the current plan
  // assumes the job's input is. Re-anchored to the forecast only when the
  // two diverge by more than size_quantum, so the workload signature — and
  // with it the cache key — repeats across epochs whose forecasts agree
  // within the tolerance. 0 = not yet anchored.
  std::vector<std::array<Bytes, 2>> planning_inputs_;
  // Last plan that drove a successful epoch, for deadline-overrun fallback.
  bool has_last_good_ = false;
  Plan last_good_plan_;
  std::uint64_t last_good_topology_ = 0;

  obs::TraceRecorder trace_;
};

}  // namespace corral

#endif  // CORRAL_CTRL_TENANT_H_
