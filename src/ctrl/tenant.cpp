#include "ctrl/tenant.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <utility>

#include "corral/fingerprint.h"
#include "plan/backend.h"
#include "util/check.h"

namespace corral {
namespace ctrl_detail {

std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

std::vector<int> outage_racks_for_epoch(const ControlLoopConfig& config,
                                        int epoch) {
  std::vector<int> racks;
  for (const RackOutage& outage : config.outages) {
    if (outage.epoch == epoch) racks.push_back(outage.rack);
  }
  std::sort(racks.begin(), racks.end());
  racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
  return racks;
}

void validate_pipelines(std::span<const RecurringPipeline> pipelines,
                        const std::string& who) {
  require(!pipelines.empty(), who + ": need at least one pipeline");
  for (const RecurringPipeline& pipeline : pipelines) {
    pipeline.reference.validate();
    require(!pipeline.timeline.empty(),
            who + ": pipeline timeline is empty");
    for (const JobInstance& instance : pipeline.timeline) {
      require(std::isfinite(instance.input_bytes) && instance.input_bytes > 0,
              who + ": pipeline '" + pipeline.reference.name +
                  "' timeline has a non-finite or non-positive input");
    }
  }
}

}  // namespace ctrl_detail

namespace {

bool is_weekend(int day) { return day % 7 == 5 || day % 7 == 6; }

std::string hex_key(std::uint64_t key) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

// The realized instance for (day, run 0) of a pipeline's exogenous
// timeline; throws when the timeline does not cover the day.
const JobInstance& timeline_instance(const RecurringPipeline& pipeline,
                                     int day) {
  for (const JobInstance& instance : pipeline.timeline) {
    if (instance.day == day && instance.run_of_day == 0) return instance;
  }
  require(false, "run_control_loop: pipeline '" + pipeline.reference.name +
                     "' timeline does not cover day " + std::to_string(day));
  return pipeline.timeline.front();  // unreachable
}

}  // namespace

TenantLoop::TenantLoop(std::vector<RecurringPipeline> pipelines,
                       const ControlLoopConfig& config, std::uint64_t seed,
                       std::uint64_t chaos_seed, int sink_base,
                       std::string label_prefix,
                       std::optional<PlannerBackendKind> backend,
                       std::optional<NetPolicy> net_policy)
    : config_(config),
      pipelines_(std::move(pipelines)),
      seed_(seed),
      sink_base_(sink_base),
      label_prefix_(std::move(label_prefix)),
      net_policy_(net_policy.value_or(config.net_policy)),
      planner_sig_(0),
      params_(LatencyModelParams::from_cluster(config.cluster)),
      budget_(config.resilience.enabled ? config.resilience.demote_after : 0,
              config.resilience.promote_after),
      cache_(config.cache_capacity),
      rf_cache_(config.size_quantum),
      planning_inputs_(pipelines_.size(), std::array<Bytes, 2>{0.0, 0.0}) {
  planner_config_.objective = config_.objective;
  planner_config_.backend = backend.value_or(config_.planner_backend);
  planner_config_.pool = config_.pool;
  planner_config_.tracer = config_.tracer;
  // The net policy shapes the realized measurements every plan is judged
  // by, so it joins the plan-cache signature exactly like the backend id.
  {
    Fingerprint sig;
    sig.mix(planner_fingerprint(planner_config_));
    sig.mix(static_cast<std::uint64_t>(net_policy_));
    planner_sig_ = sig.value();
  }
  if (!config_.chaos.empty()) {
    const std::uint64_t schedule_seed =
        chaos_seed != 0 ? chaos_seed
                        : ctrl_detail::substream(seed_, 0xC4A05u);
    chaos_schedule_ =
        ChaosSchedule(config_.chaos, config_.epochs,
                      static_cast<int>(pipelines_.size()), schedule_seed);
  }
  result_.epochs.reserve(static_cast<std::size_t>(config_.epochs));
}

void TenantLoop::restore_state(const CheckpointState& saved) {
  require(saved.planning_inputs.size() == pipelines_.size() &&
              saved.histories.size() == pipelines_.size(),
          "TenantLoop: checkpoint pipeline count mismatch");
  prev_topology_ = saved.prev_topology;
  force_replan_ = saved.force_replan;
  budget_.restore(saved.budget_mode, saved.budget_bad, saved.budget_good,
                  saved.budget_demotions, saved.budget_promotions);
  planning_inputs_ = saved.planning_inputs;
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    pipelines_[i].history = saved.histories[i];
  }
  result_.epochs = saved.reports;
  result_.drift_trips = saved.drift_trips;
  has_last_good_ = saved.has_last_good;
  last_good_plan_ = saved.last_good_plan;
  last_good_topology_ = saved.last_good_topology;
  cache_.restore(saved.plan_cache);
  rf_cache_.restore(saved.rf_entries, saved.rf_hits, saved.rf_misses);
}

void TenantLoop::save_state(CheckpointState& state) const {
  state.prev_topology = prev_topology_;
  state.force_replan = force_replan_;
  state.budget_mode = budget_.mode();
  state.budget_bad = budget_.consecutive_bad();
  state.budget_good = budget_.consecutive_good();
  state.budget_demotions = budget_.demotions();
  state.budget_promotions = budget_.promotions();
  state.planning_inputs = planning_inputs_;
  state.histories.reserve(pipelines_.size());
  for (const RecurringPipeline& pipeline : pipelines_) {
    state.histories.push_back(pipeline.history);
  }
  state.reports = result_.epochs;
  state.drift_trips = result_.drift_trips;
  state.has_last_good = has_last_good_;
  state.last_good_topology = last_good_topology_;
  if (has_last_good_) state.last_good_plan = last_good_plan_;
  state.plan_cache = cache_.snapshot();
  state.rf_entries = rf_cache_.snapshot();
  state.rf_hits = rf_cache_.hits();
  state.rf_misses = rf_cache_.misses();
}

void TenantLoop::bind_trace() {
  trace_ = obs::TraceRecorder(config_.tracer, sink_base_,
                              label_prefix_ + "ctrl");
}

EpochReport TenantLoop::run_epoch(int epoch,
                                  std::span<const int> granted_racks,
                                  bool outage, const BatchRunner& runner) {
  const ResilienceConfig& guard = config_.resilience;
  EpochReport report;
  report.epoch = epoch;
  report.day = config_.warmup_days + epoch;
  report.weekend = is_weekend(report.day);
  report.mode = budget_.mode();

  const std::vector<ChaosEvent> chaos_events =
      chaos_schedule_.for_epoch(epoch);
  report.chaos_injected = static_cast<int>(chaos_events.size());
  const auto chaos_count = [&](ChaosFault fault) {
    int n = 0;
    for (const ChaosEvent& event : chaos_events) {
      if (event.fault == fault) ++n;
    }
    return n;
  };

  // --- topology for this epoch (step 0: what world are we planning in) --
  report.outage = outage;
  const std::vector<int> usable_racks(granted_racks.begin(),
                                      granted_racks.end());
  // The planner's *view* of the topology. Stale-topology chaos hands the
  // planner a view with one healthy rack spuriously missing; the guardrail
  // revalidates the view against the authoritative rack set and plans on
  // the refreshed truth, while the unguarded loop plans on the stale view.
  std::vector<int> planner_view = usable_racks;
  if (chaos_count(ChaosFault::kStaleTopology) > 0) {
    report.stale_topology = true;
    if (!guard.enabled && planner_view.size() > 1) {
      int drop = 0;
      for (const ChaosEvent& event : chaos_events) {
        if (event.fault == ChaosFault::kStaleTopology) drop = event.target;
      }
      planner_view.erase(planner_view.begin() +
                         (drop % static_cast<int>(planner_view.size())));
    } else if (guard.enabled) {
      trace_.instant(obs::TraceTrack::kCtrl, "stale_view_refreshed", "ctrl",
                     /*tid=*/0, /*ts=*/epoch);
    }
  }
  report.planning_racks = static_cast<int>(planner_view.size());
  // A whole-cluster grant hashes to the canonical healthy fingerprint, so
  // a single tenant granted every rack keys exactly like the pre-service
  // loop; any narrower grant (outage *or* arbitration) keys differently
  // and invalidates plans built against another topology.
  const std::uint64_t topology_sig =
      topology_fingerprint(config_.cluster, usable_racks);
  const std::uint64_t view_sig =
      planner_view == usable_racks
          ? topology_sig
          : topology_fingerprint(config_.cluster, planner_view);
  if (epoch > 0 && topology_sig != prev_topology_) {
    report.invalidations = cache_.invalidate_topology_changed(topology_sig);
  }
  prev_topology_ = topology_sig;

  bool aborted = false;
  std::string abort_reason;

  // --- 1. predict -----------------------------------------------------
  std::vector<JobSpec> planning;  // what the planner (and cache key) see
  std::vector<JobSpec> realized;  // what actually runs
  planning.reserve(pipelines_.size());
  realized.reserve(pipelines_.size());
  const std::size_t kind = report.weekend ? 1 : 0;
  double error_sum = 0;
  for (std::size_t i = 0; i < pipelines_.size() && !aborted; ++i) {
    const RecurringPipeline& pipeline = pipelines_[i];
    const JobSpecEstimate estimate = estimate_job_spec(
        pipeline.reference, pipeline.history, report.day, /*run_of_day=*/0,
        /*new_id=*/static_cast<int>(i), /*arrival=*/0.0);
    double forecast = estimate.predicted_input;
    for (const ChaosEvent& event : chaos_events) {
      if (event.target != static_cast<int>(i)) continue;
      if (event.fault == ChaosFault::kPredictorSpike) {
        forecast *= event.magnitude;
      } else if (event.fault == ChaosFault::kPredictorNonFinite) {
        forecast = std::numeric_limits<double>::quiet_NaN();
      }
    }
    Bytes& sticky = planning_inputs_[i][kind];
    if (guard.enabled) {
      // Input validation: quarantine non-finite, non-positive and outlier
      // forecasts; the planner sees the last anchored size instead.
      const Bytes reference =
          sticky > 0 ? sticky
                     : (pipeline.shape.base_input > 0
                            ? pipeline.shape.base_input
                            : pipeline.reference.total_input());
      if (!std::isfinite(forecast) || forecast <= 0 ||
          forecast > reference * guard.outlier_factor ||
          forecast < reference / guard.outlier_factor) {
        forecast = reference;
        ++report.quarantined;
        trace_.instant(obs::TraceTrack::kCtrl, "quarantine", "ctrl",
                       /*tid=*/static_cast<long>(i), /*ts=*/epoch);
      }
    } else if (!std::isfinite(forecast) || forecast <= 0) {
      // Unguarded: a garbage forecast kills the epoch — nothing sane can
      // be planned or published.
      aborted = true;
      abort_reason = "nonfinite_forecast";
      break;
    }
    const JobInstance& truth = timeline_instance(pipeline, report.day);
    realized.push_back(scale_job_spec(pipeline.reference, truth.input_bytes,
                                      static_cast<int>(i),
                                      /*arrival=*/0.0));
    error_sum += std::abs(forecast -
                          static_cast<double>(truth.input_bytes)) /
                 static_cast<double>(truth.input_bytes);
    // Quantization dead-band: re-anchor the sticky planning size only
    // when the forecast moved more than size_quantum away from it.
    if (forecast > 0 &&
        (sticky <= 0 ||
         std::abs(forecast - sticky) / sticky > config_.size_quantum)) {
      sticky = forecast;
      ++report.planning_updates;
    }
    planning.push_back(scale_job_spec(pipeline.reference, sticky,
                                      static_cast<int>(i),
                                      /*arrival=*/0.0));
  }
  if (!aborted) {
    report.mean_prediction_error =
        error_sum / static_cast<double>(pipelines_.size());
  }

  // --- 2. plan (through the cache; skipped when demoted) ---------------
  Plan plan;
  bool have_plan = false;
  if (!aborted && report.mode == ControlMode::kPlanned) {
    // Cache-store chaos lands before the lookup.
    if (chaos_count(ChaosFault::kCacheCorrupt) > 0) cache_.corrupt_oldest();
    if (chaos_count(ChaosFault::kCacheLoss) > 0) {
      report.invalidations += cache_.invalidate_all();
    }
    const PlanCacheKey key{
        workload_fingerprint(planning, config_.size_quantum), view_sig,
        planner_sig_};
    report.cache_key = key.combined();
    if (force_replan_) {
      report.drift_replan = cache_.invalidate(key);
      if (report.drift_replan) ++report.invalidations;
      force_replan_ = false;
    }
    const std::uint64_t rf_hits_before = rf_cache_.hits();
    const std::uint64_t rf_misses_before = rf_cache_.misses();
    if (const Plan* cached = cache_.find(key); cached != nullptr) {
      report.cache_hit = true;
      plan = *cached;
      report.replan_cost_evals = 0;  // the whole point of the cache
      have_plan = true;
    } else {
      planner_config_.trace_sink = sink_base_ + 1 + 2 * epoch;
      // Plan on a virtual cluster of |planner_view| racks (response
      // functions memoized across epochs), then map virtual rack ids back
      // onto the surviving physical racks — the §7 subcluster trick
      // plan_offline's usable_racks overload uses, routed through the
      // memo.
      const std::vector<ResponseFunction> functions =
          rf_cache_.get_all(planning, report.planning_racks, params_);
      // Backend dispatch (src/plan): kCorral runs the §4.2 search exactly
      // as before; the planning specs ride along so DAG-aware backends can
      // inspect stage structure.
      // Placement constraints (corral/placement.h): resolved against the
      // physical cluster, projected onto the planning view, and handed to
      // the backend for this plan only.
      std::vector<JobPlacement> placements;
      if (any_constrained(std::span<const JobSpec>(planning))) {
        placements = remap_placements(
            resolve_placements(planning, config_.cluster), planning,
            planner_view);
        planner_config_.placements = &placements;
      }
      plan::PlannerRequest plan_request;
      plan_request.jobs = functions;
      plan_request.specs = planning;
      plan_request.num_racks = report.planning_racks;
      plan_request.config = &planner_config_;
      plan = plan::planner_backend(planner_config_.backend)
                 .plan(plan_request)
                 .plan;
      planner_config_.placements = nullptr;
      for (PlannedJob& job : plan.jobs) {
        for (int& r : job.racks) {
          r = planner_view[static_cast<std::size_t>(r)];
        }
      }
      report.replan_cost_evals = plan.evaluated_candidates;
      // Planner deadline: a chaos overrun, or a real provisioning search
      // that blew its evaluation budget.
      report.planner_overrun =
          chaos_count(ChaosFault::kPlannerOverrun) > 0 ||
          (guard.enabled && guard.planner_budget_evals > 0 &&
           plan.evaluated_candidates > guard.planner_budget_evals);
      if (report.planner_overrun) {
        trace_.instant(obs::TraceTrack::kCtrl, "planner_overrun", "ctrl",
                       /*tid=*/0, /*ts=*/epoch);
      }
      if (report.planner_overrun && !guard.enabled) {
        // Unguarded: the deadline passed with nothing published.
        aborted = true;
        abort_reason = "planner_overrun";
      } else {
        cache_.insert(key, plan);
        have_plan = true;
        if (report.planner_overrun && has_last_good_ &&
            last_good_topology_ == view_sig) {
          // Guarded: publish the last good plan instead of publishing
          // late. The fresh plan stays cached for the next epoch.
          plan = last_good_plan_;
          report.fallback_plan = true;
          trace_.instant(obs::TraceTrack::kCtrl, "fallback_plan", "ctrl",
                         /*tid=*/0, /*ts=*/epoch);
        }
      }
    }
    report.rf_hits = rf_cache_.hits() - rf_hits_before;
    report.rf_misses = rf_cache_.misses() - rf_misses_before;
    if (have_plan) report.predicted_makespan = plan.predicted_makespan;
  }

  // --- 3. execute (the realized instances, not the predictions) -------
  std::optional<PlanLookup> lookup;
  if (have_plan) lookup.emplace(planning, plan);
  const SimResult* sim = nullptr;
  std::vector<BatchResult> batch;
  if (!aborted) {
    const int failing_attempts = chaos_count(ChaosFault::kExecFailure);
    double abort_fraction = 0;
    for (const ChaosEvent& event : chaos_events) {
      if (event.fault == ChaosFault::kExecFailure) {
        abort_fraction = event.magnitude;
      }
    }
    const int max_attempts = guard.enabled ? 1 + guard.max_retries : 1;
    Seconds backoff = guard.retry_backoff;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      BatchCase batch_case;
      batch_case.label = label_prefix_ + "epoch" + std::to_string(epoch);
      batch_case.jobs = realized;
      batch_case.config.cluster = config_.cluster;
      batch_case.config.seed = ctrl_detail::substream(seed_, epoch);
      batch_case.config.tracer = config_.tracer;
      batch_case.config.trace_sink = sink_base_ + 2 + 2 * epoch;
      batch_case.config.trace_label = batch_case.label + "/sim";
      batch_case.config.net_policy = net_policy_;
      if (attempt < failing_attempts) {
        // Injected execution failure: this attempt dies partway through
        // the epoch's predicted span.
        const Seconds horizon = report.predicted_makespan > 0
                                    ? report.predicted_makespan
                                    : 3600.0;
        batch_case.config.abort_at_time =
            std::max(1.0, abort_fraction * horizon);
      }
      // Every machine outside this tenant's grant — racks down for the
      // epoch and racks arbitrated away to other tenants alike — is failed
      // hardware as far as this tenant's simulation is concerned.
      for (int rack = 0; rack < config_.cluster.racks; ++rack) {
        if (std::binary_search(granted_racks.begin(), granted_racks.end(),
                               rack)) {
          continue;
        }
        for (int m = 0; m < config_.cluster.machines_per_rack; ++m) {
          batch_case.config.failed_machines.push_back(
              rack * config_.cluster.machines_per_rack + m);
        }
      }
      batch_case.make_policy =
          [&lookup]() -> std::unique_ptr<SchedulingPolicy> {
        if (lookup.has_value()) {
          return std::make_unique<CorralPolicy>(&*lookup);
        }
        return std::make_unique<YarnCapacityPolicy>();
      };
      try {
        batch = runner.run(std::span<const BatchCase>(&batch_case, 1));
        sim = &batch.front().result;
        break;
      } catch (const SimulationAborted&) {
        if (attempt + 1 >= max_attempts) {
          aborted = true;
          abort_reason = "exec_failure";
          break;
        }
        ++report.exec_retries;
        trace_.instant(obs::TraceTrack::kCtrl, "exec_retry", "ctrl",
                       /*tid=*/0, /*ts=*/epoch,
                       {obs::arg("backoff_s", backoff)});
        backoff *= 2;  // virtual-time backoff before the next attempt
      }
    }
  }

  // --- 4. measure -----------------------------------------------------
  if (sim != nullptr) {
    report.realized_makespan = sim->makespan;
    report.makespan_error =
        report.predicted_makespan > 0
            ? std::abs(sim->makespan - report.predicted_makespan) /
                  report.predicted_makespan
            : 0.0;
    report.jobs_failed = sim->jobs_failed;
    double completion_error_sum = 0;
    int completion_samples = 0;
    if (lookup.has_value()) {
      for (std::size_t i = 0; i < pipelines_.size(); ++i) {
        const JobResult* job = sim->find_job(static_cast<int>(i));
        const PlannedJob* planned = lookup->find(static_cast<int>(i));
        if (job == nullptr || job->failed || planned == nullptr) continue;
        const Seconds expected = planned->predicted_completion();
        if (expected <= 0) continue;
        completion_error_sum += std::abs(job->finish - expected) / expected;
        ++completion_samples;
      }
    }
    report.mean_completion_error =
        completion_samples > 0 ? completion_error_sum / completion_samples
                               : 0.0;

    // --- 5. replan: feedback + drift ----------------------------------
    for (std::size_t i = 0; i < pipelines_.size(); ++i) {
      const JobResult* job = sim->find_job(static_cast<int>(i));
      if (job == nullptr || job->failed) continue;  // nothing observed
      record_instance(pipelines_[i].history,
                      timeline_instance(pipelines_[i], report.day));
      prune_history(pipelines_[i].history, config_.history_window_days);
    }
  }

  report.aborted = aborted;
  if (aborted) {
    report.mean_prediction_error = 0;
    trace_.instant(obs::TraceTrack::kCtrl, "epoch_aborted", "ctrl",
                   /*tid=*/0, /*ts=*/epoch,
                   {obs::arg("reason", abort_reason)});
  }

  const bool over_threshold =
      aborted || report.mean_prediction_error > config_.drift_threshold;
  if (!aborted && report.mean_prediction_error > config_.drift_threshold) {
    ++result_.drift_trips;
    force_replan_ = true;
  }
  if (!aborted && report.mode == ControlMode::kPlanned && have_plan) {
    has_last_good_ = true;
    last_good_plan_ = plan;
    last_good_topology_ = view_sig;
  }
  // Error budget: aborted and over-drift epochs burn it; clean epochs
  // restore it. Transitions fire *after* the epoch that spent the budget.
  if (budget_.record(over_threshold)) {
    if (budget_.mode() == ControlMode::kReactive) {
      report.demoted = true;
      trace_.instant(obs::TraceTrack::kCtrl, "demote", "ctrl", /*tid=*/0,
                     /*ts=*/epoch);
    } else {
      report.promoted = true;
      trace_.instant(obs::TraceTrack::kCtrl, "promote", "ctrl", /*tid=*/0,
                     /*ts=*/epoch);
    }
  }

  trace_.span(obs::TraceTrack::kCtrl, "epoch", "ctrl", /*tid=*/0,
              /*start=*/epoch, /*end=*/epoch + 1,
              {obs::arg("day", static_cast<double>(report.day)),
               obs::arg("key", hex_key(report.cache_key)),
               obs::arg("hit", static_cast<double>(report.cache_hit)),
               obs::arg("prediction_error", report.mean_prediction_error),
               obs::arg("replan_evals",
                        static_cast<double>(report.replan_cost_evals)),
               obs::arg("mode", std::string(to_string(report.mode))),
               obs::arg("chaos", static_cast<double>(report.chaos_injected)),
               obs::arg("aborted", static_cast<double>(report.aborted))});

  result_.epochs.push_back(report);
  return report;
}

bool TenantLoop::crash_after(int epoch) const {
  return chaos_schedule_.crash_after(epoch);
}

void TenantLoop::note_crash(int epoch) {
  // Whole-process crash: the run ends here; a later run resumes from the
  // checkpoint just written and replays nothing.
  result_.crashed_after = epoch;
  trace_.instant(obs::TraceTrack::kCtrl, "crash", "ctrl", /*tid=*/0,
                 /*ts=*/epoch + 1);
}

ControlLoopResult TenantLoop::finish() {
  result_.cache = cache_.stats();
  result_.rf_hits = rf_cache_.hits();
  result_.rf_misses = rf_cache_.misses();
  double error_sum = 0;
  int completed = 0;
  for (const EpochReport& report : result_.epochs) {
    if (report.aborted) {
      ++result_.epochs_aborted;
      continue;
    }
    ++completed;
    error_sum += report.mean_prediction_error;
  }
  result_.epochs_completed = completed;
  result_.mean_prediction_error =
      completed > 0 ? error_sum / static_cast<double>(completed) : 0.0;
  for (const EpochReport& report : result_.epochs) {
    result_.chaos_events += report.chaos_injected;
    result_.quarantined += report.quarantined;
    result_.exec_retries += report.exec_retries;
    if (report.fallback_plan) ++result_.fallbacks;
    if (report.planner_overrun) ++result_.overruns;
    if (report.stale_topology) ++result_.stale_views;
  }
  result_.demotions = budget_.demotions();
  result_.promotions = budget_.promotions();
  return std::move(result_);
}

}  // namespace corral
