#include "ctrl/checkpoint.h"

#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "corral/fingerprint.h"
#include "util/check.h"

namespace corral {
namespace {

constexpr std::string_view kMagic = "corral-checkpoint";
constexpr std::string_view kVersion = "v1";
constexpr std::string_view kVersionService = "v2";

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// Doubles round-trip as the hex image of their IEEE-754 bits: exact for
// every value including -0.0, subnormals, infinities and NaN payloads.
std::string bits(double value) {
  return hex16(std::bit_cast<std::uint64_t>(value));
}

class Writer {
 public:
  void word(std::string_view text) {
    sep();
    out_ << text;
  }
  void integer(long long value) {
    sep();
    out_ << value;
  }
  void u64(std::uint64_t value) { word(hex16(value)); }
  void real(double value) { word(bits(value)); }
  void boolean(bool value) { integer(value ? 1 : 0); }
  void str(const std::string& text) {
    integer(static_cast<long long>(text.size()));
    out_ << ' ' << text;
    line_open_ = true;
  }
  void endl() {
    out_ << '\n';
    line_open_ = false;
  }
  std::string take() { return out_.str(); }

 private:
  void sep() {
    if (line_open_) out_ << ' ';
    line_open_ = true;
  }
  std::ostringstream out_;
  bool line_open_ = false;
};

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  std::string_view word() {
    skip_ws();
    require(pos_ < text_.size(), "checkpoint: truncated");
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  void expect(std::string_view expected) {
    const std::string_view got = word();
    require(got == expected, "checkpoint: expected '" +
                                 std::string(expected) + "', got '" +
                                 std::string(got) + "'");
  }

  long long integer() {
    const std::string token(word());
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    require(end != token.c_str() && *end == '\0',
            "checkpoint: bad integer '" + token + "'");
    return value;
  }

  int count() {
    const long long value = integer();
    require(value >= 0, "checkpoint: negative count");
    return static_cast<int>(value);
  }

  std::uint64_t u64() {
    const std::string token(word());
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 16);
    require(end != token.c_str() && *end == '\0',
            "checkpoint: bad hex value '" + token + "'");
    return value;
  }

  std::uint64_t u64_dec() {
    const long long value = integer();
    require(value >= 0, "checkpoint: negative counter");
    return static_cast<std::uint64_t>(value);
  }

  double real() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const long long value = integer();
    require(value == 0 || value == 1, "checkpoint: bad boolean");
    return value == 1;
  }

  std::string str() {
    const long long len = integer();
    require(len >= 0, "checkpoint: negative string length");
    require(pos_ < text_.size() && text_[pos_] == ' ',
            "checkpoint: malformed string");
    ++pos_;
    require(pos_ + static_cast<std::size_t>(len) <= text_.size(),
            "checkpoint: truncated string");
    std::string out(text_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  void finish() {
    skip_ws();
    require(pos_ == text_.size(), "checkpoint: trailing data");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view text_;
  std::size_t pos_ = 0;
};

void put_plan(Writer& w, const Plan& plan) {
  w.word("plan");
  w.integer(static_cast<long long>(plan.jobs.size()));
  w.real(plan.predicted_makespan);
  w.real(plan.predicted_avg_completion);
  w.integer(static_cast<long long>(plan.evaluated_candidates));
  w.endl();
  for (const PlannedJob& job : plan.jobs) {
    w.integer(job.job_index);
    w.integer(job.num_racks);
    w.integer(job.priority);
    w.real(job.start_time);
    w.real(job.predicted_latency);
    w.integer(static_cast<long long>(job.racks.size()));
    for (int rack : job.racks) w.integer(rack);
    w.endl();
  }
}

Plan get_plan(Reader& r) {
  r.expect("plan");
  Plan plan;
  const int jobs = r.count();
  plan.predicted_makespan = r.real();
  plan.predicted_avg_completion = r.real();
  plan.evaluated_candidates = static_cast<std::size_t>(r.integer());
  plan.jobs.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    PlannedJob job;
    job.job_index = static_cast<int>(r.integer());
    job.num_racks = static_cast<int>(r.integer());
    job.priority = static_cast<int>(r.integer());
    job.start_time = r.real();
    job.predicted_latency = r.real();
    const int racks = r.count();
    job.racks.reserve(static_cast<std::size_t>(racks));
    for (int k = 0; k < racks; ++k) {
      job.racks.push_back(static_cast<int>(r.integer()));
    }
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

void put_report(Writer& w, const EpochReport& report) {
  w.word("report");
  w.integer(report.epoch);
  w.integer(report.day);
  w.boolean(report.weekend);
  w.u64(report.cache_key);
  w.boolean(report.cache_hit);
  w.boolean(report.outage);
  w.boolean(report.drift_replan);
  w.integer(static_cast<long long>(report.invalidations));
  w.integer(report.planning_racks);
  w.integer(report.planning_updates);
  w.integer(static_cast<long long>(report.replan_cost_evals));
  w.integer(static_cast<long long>(report.rf_hits));
  w.integer(static_cast<long long>(report.rf_misses));
  w.real(report.mean_prediction_error);
  w.real(report.predicted_makespan);
  w.real(report.realized_makespan);
  w.real(report.makespan_error);
  w.real(report.mean_completion_error);
  w.integer(report.jobs_failed);
  w.integer(static_cast<int>(report.mode));
  w.integer(report.chaos_injected);
  w.integer(report.quarantined);
  w.integer(report.exec_retries);
  w.boolean(report.planner_overrun);
  w.boolean(report.fallback_plan);
  w.boolean(report.stale_topology);
  w.boolean(report.aborted);
  w.boolean(report.demoted);
  w.boolean(report.promoted);
  w.endl();
}

EpochReport get_report(Reader& r) {
  r.expect("report");
  EpochReport report;
  report.epoch = static_cast<int>(r.integer());
  report.day = static_cast<int>(r.integer());
  report.weekend = r.boolean();
  report.cache_key = r.u64();
  report.cache_hit = r.boolean();
  report.outage = r.boolean();
  report.drift_replan = r.boolean();
  report.invalidations = r.u64_dec();
  report.planning_racks = static_cast<int>(r.integer());
  report.planning_updates = static_cast<int>(r.integer());
  report.replan_cost_evals = static_cast<std::size_t>(r.integer());
  report.rf_hits = r.u64_dec();
  report.rf_misses = r.u64_dec();
  report.mean_prediction_error = r.real();
  report.predicted_makespan = r.real();
  report.realized_makespan = r.real();
  report.makespan_error = r.real();
  report.mean_completion_error = r.real();
  report.jobs_failed = static_cast<int>(r.integer());
  const int mode = static_cast<int>(r.integer());
  require(mode == 0 || mode == 1, "checkpoint: bad report mode");
  report.mode = static_cast<ControlMode>(mode);
  report.chaos_injected = static_cast<int>(r.integer());
  report.quarantined = static_cast<int>(r.integer());
  report.exec_retries = static_cast<int>(r.integer());
  report.planner_overrun = r.boolean();
  report.fallback_plan = r.boolean();
  report.stale_topology = r.boolean();
  report.aborted = r.boolean();
  report.demoted = r.boolean();
  report.promoted = r.boolean();
  return report;
}

// The per-tenant body: everything one TenantLoop mutates across epochs,
// from the "state" line through the "rf" section. A v1 checkpoint has
// exactly one; a v2 service checkpoint has one per tenant.
void put_body(Writer& w, const CheckpointState& state) {
  w.word("state");
  w.integer(state.next_epoch);
  w.u64(state.prev_topology);
  w.boolean(state.force_replan);
  w.endl();
  w.word("budget");
  w.integer(static_cast<int>(state.budget_mode));
  w.integer(state.budget_bad);
  w.integer(state.budget_good);
  w.integer(state.budget_demotions);
  w.integer(state.budget_promotions);
  w.endl();

  require(state.planning_inputs.size() == state.histories.size(),
          "serialize_checkpoint: planning_inputs/histories size mismatch");
  w.word("pipelines");
  w.integer(static_cast<long long>(state.histories.size()));
  w.endl();
  for (std::size_t i = 0; i < state.histories.size(); ++i) {
    w.word("sticky");
    w.real(state.planning_inputs[i][0]);
    w.real(state.planning_inputs[i][1]);
    w.integer(static_cast<long long>(state.histories[i].size()));
    w.endl();
    for (const JobInstance& instance : state.histories[i]) {
      w.integer(instance.day);
      w.integer(instance.run_of_day);
      w.real(instance.input_bytes);
      w.endl();
    }
  }

  w.word("reports");
  w.integer(static_cast<long long>(state.reports.size()));
  w.integer(state.drift_trips);
  w.endl();
  for (const EpochReport& report : state.reports) put_report(w, report);

  w.word("last_good");
  w.boolean(state.has_last_good);
  w.u64(state.last_good_topology);
  w.endl();
  if (state.has_last_good) put_plan(w, state.last_good_plan);

  w.word("plan_cache");
  w.integer(static_cast<long long>(state.plan_cache.entries.size()));
  w.integer(static_cast<long long>(state.plan_cache.stats.hits));
  w.integer(static_cast<long long>(state.plan_cache.stats.misses));
  w.integer(static_cast<long long>(state.plan_cache.stats.invalidations));
  w.integer(static_cast<long long>(state.plan_cache.stats.evictions));
  w.integer(static_cast<long long>(state.plan_cache.stats.corruptions));
  w.endl();
  for (const PlanCache::Snapshot::Item& item : state.plan_cache.entries) {
    w.word("entry");
    w.u64(item.key.workload);
    w.u64(item.key.topology);
    w.u64(item.key.planner);
    w.endl();
    put_plan(w, item.plan);
  }

  w.word("rf");
  w.integer(static_cast<long long>(state.rf_entries.size()));
  w.integer(static_cast<long long>(state.rf_hits));
  w.integer(static_cast<long long>(state.rf_misses));
  w.endl();
  for (const auto& [key, latencies] : state.rf_entries) {
    w.u64(key);
    w.integer(static_cast<long long>(latencies.size()));
    for (Seconds latency : latencies) w.real(latency);
    w.endl();
  }
}

void get_body(Reader& r, CheckpointState& state) {
  r.expect("state");
  state.next_epoch = static_cast<int>(r.integer());
  state.prev_topology = r.u64();
  state.force_replan = r.boolean();
  r.expect("budget");
  const int mode = static_cast<int>(r.integer());
  require(mode == 0 || mode == 1, "checkpoint: bad budget mode");
  state.budget_mode = static_cast<ControlMode>(mode);
  state.budget_bad = static_cast<int>(r.integer());
  state.budget_good = static_cast<int>(r.integer());
  state.budget_demotions = static_cast<int>(r.integer());
  state.budget_promotions = static_cast<int>(r.integer());

  r.expect("pipelines");
  const int pipelines = r.count();
  state.planning_inputs.reserve(static_cast<std::size_t>(pipelines));
  state.histories.reserve(static_cast<std::size_t>(pipelines));
  for (int i = 0; i < pipelines; ++i) {
    r.expect("sticky");
    std::array<Bytes, 2> sticky{r.real(), r.real()};
    state.planning_inputs.push_back(sticky);
    const int entries = r.count();
    std::vector<JobInstance> history;
    history.reserve(static_cast<std::size_t>(entries));
    for (int j = 0; j < entries; ++j) {
      JobInstance instance;
      instance.day = static_cast<int>(r.integer());
      instance.run_of_day = static_cast<int>(r.integer());
      instance.input_bytes = r.real();
      history.push_back(instance);
    }
    state.histories.push_back(std::move(history));
  }

  r.expect("reports");
  const int reports = r.count();
  state.drift_trips = static_cast<int>(r.integer());
  state.reports.reserve(static_cast<std::size_t>(reports));
  for (int i = 0; i < reports; ++i) state.reports.push_back(get_report(r));

  r.expect("last_good");
  state.has_last_good = r.boolean();
  state.last_good_topology = r.u64();
  if (state.has_last_good) state.last_good_plan = get_plan(r);

  r.expect("plan_cache");
  const int entries = r.count();
  state.plan_cache.stats.hits = static_cast<std::uint64_t>(r.integer());
  state.plan_cache.stats.misses = static_cast<std::uint64_t>(r.integer());
  state.plan_cache.stats.invalidations =
      static_cast<std::uint64_t>(r.integer());
  state.plan_cache.stats.evictions = static_cast<std::uint64_t>(r.integer());
  state.plan_cache.stats.corruptions =
      static_cast<std::uint64_t>(r.integer());
  state.plan_cache.entries.reserve(static_cast<std::size_t>(entries));
  for (int i = 0; i < entries; ++i) {
    r.expect("entry");
    PlanCache::Snapshot::Item item;
    item.key.workload = r.u64();
    item.key.topology = r.u64();
    item.key.planner = r.u64();
    item.plan = get_plan(r);
    state.plan_cache.entries.push_back(std::move(item));
  }

  r.expect("rf");
  const int rf_entries = r.count();
  state.rf_hits = static_cast<std::uint64_t>(r.integer());
  state.rf_misses = static_cast<std::uint64_t>(r.integer());
  state.rf_entries.reserve(static_cast<std::size_t>(rf_entries));
  for (int i = 0; i < rf_entries; ++i) {
    const std::uint64_t key = r.u64();
    const int count = r.count();
    std::vector<Seconds> latencies;
    latencies.reserve(static_cast<std::size_t>(count));
    for (int j = 0; j < count; ++j) latencies.push_back(r.real());
    state.rf_entries.emplace_back(key, std::move(latencies));
  }
}

void put_trace(Writer& w, const obs::TraceSnapshot& trace) {
  w.word("trace");
  w.integer(static_cast<long long>(trace.sinks.size()));
  w.endl();
  for (const obs::TraceSnapshot::Sink& sink : trace.sinks) {
    w.word("sink");
    w.integer(sink.id);
    w.str(sink.label);
    w.integer(static_cast<long long>(sink.events.size()));
    w.endl();
    for (const obs::TraceEvent& event : sink.events) {
      w.integer(static_cast<int>(event.phase));
      w.integer(static_cast<int>(event.track));
      w.integer(event.tid);
      w.real(event.ts);
      w.real(event.dur);
      w.real(event.value);
      w.str(event.name);
      w.str(event.cat);
      w.integer(static_cast<long long>(event.args.size()));
      for (const obs::TraceArg& arg : event.args) {
        w.boolean(arg.numeric);
        w.real(arg.num);
        w.str(arg.key);
        w.str(arg.str);
      }
      w.endl();
    }
  }
}

void get_trace(Reader& r, obs::TraceSnapshot& trace) {
  r.expect("trace");
  const int sinks = r.count();
  trace.sinks.reserve(static_cast<std::size_t>(sinks));
  for (int i = 0; i < sinks; ++i) {
    r.expect("sink");
    obs::TraceSnapshot::Sink sink;
    sink.id = static_cast<int>(r.integer());
    sink.label = r.str();
    const int events = r.count();
    sink.events.reserve(static_cast<std::size_t>(events));
    for (int j = 0; j < events; ++j) {
      obs::TraceEvent event;
      const int phase = static_cast<int>(r.integer());
      require(phase >= 0 && phase <= 2, "checkpoint: bad trace phase");
      event.phase = static_cast<obs::TracePhase>(phase);
      const int track = static_cast<int>(r.integer());
      require(track >= 0 && track < obs::kTraceTracks,
              "checkpoint: bad trace track");
      event.track = static_cast<obs::TraceTrack>(track);
      event.tid = static_cast<long>(r.integer());
      event.ts = r.real();
      event.dur = r.real();
      event.value = r.real();
      event.name = r.str();
      event.cat = r.str();
      const int args = r.count();
      event.args.reserve(static_cast<std::size_t>(args));
      for (int k = 0; k < args; ++k) {
        obs::TraceArg arg;
        arg.numeric = r.boolean();
        arg.num = r.real();
        arg.key = r.str();
        arg.str = r.str();
        event.args.push_back(std::move(arg));
      }
      sink.events.push_back(std::move(event));
    }
    trace.sinks.push_back(std::move(sink));
  }
}

// Appends the checksum trailer; the inverse of verify_checksum.
std::string seal(Writer& w) {
  std::string body = w.take();
  const std::uint64_t checksum = fnv1a(body);
  body += "checksum " + hex16(checksum) + "\n";
  return body;
}

// Verifies the trailer and returns the body it covers.
std::string_view verify_checksum(const std::string& text) {
  const std::size_t trailer = text.rfind("\nchecksum ");
  require(trailer != std::string::npos, "checkpoint: missing checksum");
  const std::string_view body(text.data(), trailer + 1);
  Reader tail(std::string_view(text).substr(trailer + 1));
  tail.expect("checksum");
  const std::uint64_t expected = tail.u64();
  tail.finish();
  require(fnv1a(body) == expected, "checkpoint: checksum mismatch");
  return body;
}

}  // namespace

std::uint64_t control_loop_fingerprint(
    const ControlLoopConfig& config,
    const std::vector<RecurringPipeline>& pipelines) {
  Fingerprint f;
  f.mix(topology_fingerprint(config.cluster));
  f.mix(static_cast<std::uint64_t>(config.objective ==
                                   Objective::kMakespan
                                       ? 0
                                       : 1));
  f.mix(static_cast<std::uint64_t>(config.planner_backend));
  f.mix(static_cast<std::uint64_t>(config.net_policy));
  f.mix(static_cast<std::uint64_t>(config.epochs));
  f.mix(static_cast<std::uint64_t>(config.warmup_days));
  f.mix(config.drift_threshold);
  f.mix(config.size_quantum);
  f.mix(static_cast<std::uint64_t>(config.history_window_days));
  f.mix(static_cast<std::uint64_t>(config.outages.size()));
  for (const RackOutage& outage : config.outages) {
    f.mix(static_cast<std::uint64_t>(outage.epoch));
    f.mix(static_cast<std::uint64_t>(outage.rack));
  }
  f.mix(static_cast<std::uint64_t>(config.cache_capacity));
  f.mix(config.seed);
  f.mix(config.chaos.fingerprint());
  f.mix(config.chaos_seed);
  f.mix(static_cast<std::uint64_t>(config.resilience.enabled ? 1 : 0));
  f.mix(static_cast<std::uint64_t>(config.resilience.planner_budget_evals));
  f.mix(static_cast<std::uint64_t>(config.resilience.max_retries));
  f.mix(config.resilience.retry_backoff);
  f.mix(config.resilience.outlier_factor);
  f.mix(static_cast<std::uint64_t>(config.resilience.demote_after));
  f.mix(static_cast<std::uint64_t>(config.resilience.promote_after));
  f.mix(static_cast<std::uint64_t>(pipelines.size()));
  for (const RecurringPipeline& pipeline : pipelines) {
    f.mix(job_fingerprint(pipeline.reference, config.size_quantum));
    f.mix(pipeline.shape.base_input);
    f.mix(static_cast<std::uint64_t>(pipeline.timeline.size()));
    for (const JobInstance& instance : pipeline.timeline) {
      f.mix(static_cast<std::uint64_t>(instance.day));
      f.mix(static_cast<std::uint64_t>(instance.run_of_day));
      f.mix(instance.input_bytes);
    }
  }
  return f.value();
}

std::string serialize_checkpoint(const CheckpointState& state) {
  Writer w;
  w.word(kMagic);
  w.word(kVersion);
  w.endl();
  w.word("config");
  w.u64(state.config_fingerprint);
  w.endl();
  put_body(w, state);
  put_trace(w, state.trace);
  return seal(w);
}

CheckpointState deserialize_checkpoint(const std::string& text) {
  const std::string_view body = verify_checksum(text);
  Reader r(body);
  r.expect(kMagic);
  r.expect(kVersion);
  CheckpointState state;
  r.expect("config");
  state.config_fingerprint = r.u64();
  get_body(r, state);
  get_trace(r, state.trace);
  r.finish();
  return state;
}

std::string serialize_service_checkpoint(const ServiceCheckpointState& state) {
  Writer w;
  w.word(kMagic);
  w.word(kVersionService);
  w.endl();
  w.word("config");
  w.u64(state.config_fingerprint);
  w.endl();
  w.word("service");
  w.integer(state.next_epoch);
  w.integer(static_cast<long long>(state.tenants.size()));
  w.endl();
  for (std::size_t t = 0; t < state.tenants.size(); ++t) {
    w.word("tenant");
    w.integer(static_cast<long long>(t));
    w.endl();
    put_body(w, state.tenants[t]);
  }
  put_trace(w, state.trace);
  return seal(w);
}

ServiceCheckpointState deserialize_service_checkpoint(
    const std::string& text) {
  const std::string_view body = verify_checksum(text);
  Reader r(body);
  r.expect(kMagic);
  r.expect(kVersionService);
  ServiceCheckpointState state;
  r.expect("config");
  state.config_fingerprint = r.u64();
  r.expect("service");
  state.next_epoch = static_cast<int>(r.integer());
  const int tenants = r.count();
  state.tenants.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    r.expect("tenant");
    const long long index = r.integer();
    require(index == t, "checkpoint: tenant sections out of order");
    CheckpointState tenant;
    get_body(r, tenant);
    state.tenants.push_back(std::move(tenant));
  }
  get_trace(r, state.trace);
  r.finish();
  return state;
}

void write_checkpoint(const std::string& path, const CheckpointState& state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for write");
    out << serialize_checkpoint(state);
    if (!out) throw std::runtime_error("write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
}

CheckpointState read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("read from " + path + " failed");
  }
  return deserialize_checkpoint(buffer.str());
}

void write_service_checkpoint(const std::string& path,
                              const ServiceCheckpointState& state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for write");
    out << serialize_service_checkpoint(state);
    if (!out) throw std::runtime_error("write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
}

ServiceCheckpointState read_service_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("read from " + path + " failed");
  }
  return deserialize_service_checkpoint(buffer.str());
}

}  // namespace corral
