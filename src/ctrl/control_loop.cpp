#include "ctrl/control_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "corral/fingerprint.h"
#include "exec/exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/batch.h"
#include "util/check.h"

namespace corral {
namespace {

// Splitmix-style per-index stream separation, matching the seed derivation
// used elsewhere in the tree (one independent stream per epoch / pipeline).
std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

bool is_weekend(int day) { return day % 7 == 5 || day % 7 == 6; }

std::string hex_key(std::uint64_t key) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

// The realized instance for (day, run 0) of a pipeline's exogenous
// timeline; throws when the timeline does not cover the day.
const JobInstance& timeline_instance(const RecurringPipeline& pipeline,
                                     int day) {
  for (const JobInstance& instance : pipeline.timeline) {
    if (instance.day == day && instance.run_of_day == 0) return instance;
  }
  require(false, "run_control_loop: pipeline '" + pipeline.reference.name +
                     "' timeline does not cover day " + std::to_string(day));
  return pipeline.timeline.front();  // unreachable
}

}  // namespace

void ControlLoopConfig::validate() const {
  require(epochs > 0, "ControlLoopConfig: epochs must be positive");
  require(warmup_days >= 1, "ControlLoopConfig: warmup_days must be >= 1");
  require(drift_threshold > 0,
          "ControlLoopConfig: drift_threshold must be positive");
  require(size_quantum > 0,
          "ControlLoopConfig: size_quantum must be positive");
  require(history_window_days >= 0,
          "ControlLoopConfig: history_window_days must be >= 0");
  require(cache_capacity >= 1,
          "ControlLoopConfig: cache_capacity must be >= 1");
  require(cluster.racks >= 1 && cluster.machines_per_rack >= 1 &&
              cluster.slots_per_machine >= 1,
          "ControlLoopConfig: cluster must have racks, machines and slots");
  if (outage_epoch >= 0) {
    require(outage_epoch < epochs,
            "ControlLoopConfig: outage_epoch must be < epochs");
    require(outage_rack >= 0 && outage_rack < cluster.racks,
            "ControlLoopConfig: outage_rack out of range");
    require(cluster.racks >= 2,
            "ControlLoopConfig: an outage needs at least 2 racks");
  }
}

double ControlLoopResult::hit_rate_after(int after_epoch) const {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;
  for (const EpochReport& report : epochs) {
    if (report.epoch <= after_epoch) continue;
    ++total;
    if (report.cache_hit) ++hits;
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

std::vector<RecurringPipeline> make_recurring_fleet(const W1Config& config,
                                                    int warmup_days,
                                                    int epochs,
                                                    std::uint64_t seed) {
  require(warmup_days >= 1, "make_recurring_fleet: warmup_days must be >= 1");
  require(epochs > 0, "make_recurring_fleet: epochs must be positive");
  Rng rng(seed);
  const std::vector<JobSpec> jobs = make_w1(config, rng);
  std::vector<RecurringPipeline> fleet;
  fleet.reserve(jobs.size());
  const int days = warmup_days + epochs;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    RecurringPipeline pipeline;
    pipeline.reference = jobs[j];
    pipeline.reference.recurring = true;
    RecurringJobTemplate& shape = pipeline.shape;
    shape.name = jobs[j].name;
    shape.base_input = jobs[j].total_input();
    shape.weekday_factor = 1.0;
    // Per-pipeline seasonality: distinct weekend dips and growth rates so
    // the fleet's day-to-day shifts are not perfectly correlated.
    shape.weekend_factor = 0.5 + 0.04 * static_cast<double>(j % 8);
    shape.noise = 0.065;  // the paper's 6.5% prediction error (§2, Fig 1)
    shape.drift_per_day = 0.001 + 0.0005 * static_cast<double>(j % 3);
    shape.runs_per_day = 1;
    Rng job_rng(substream(seed, j));
    pipeline.timeline = generate_history(shape, days, job_rng);
    pipeline.history.assign(
        pipeline.timeline.begin(),
        pipeline.timeline.begin() +
            std::min<std::size_t>(pipeline.timeline.size(),
                                  static_cast<std::size_t>(warmup_days)));
    fleet.push_back(std::move(pipeline));
  }
  return fleet;
}

ControlLoopResult run_control_loop(std::vector<RecurringPipeline> pipelines,
                                   const ControlLoopConfig& config) {
  config.validate();
  require(!pipelines.empty(), "run_control_loop: need at least one pipeline");
  for (const RecurringPipeline& pipeline : pipelines) {
    pipeline.reference.validate();
    require(!pipeline.timeline.empty(),
            "run_control_loop: pipeline timeline is empty");
  }

  PlannerConfig planner_config;
  planner_config.objective = config.objective;
  planner_config.pool = config.pool;
  planner_config.tracer = config.tracer;
  const std::uint64_t planner_sig = planner_fingerprint(planner_config);
  const LatencyModelParams params =
      LatencyModelParams::from_cluster(config.cluster);

  PlanCache cache(config.cache_capacity);
  ResponseFunctionCache rf_cache(config.size_quantum);
  const BatchRunner runner(config.pool);
  const obs::TraceRecorder trace(config.tracer, /*sink_id=*/0, "ctrl");

  ControlLoopResult result;
  result.epochs.reserve(static_cast<std::size_t>(config.epochs));

  std::vector<int> all_racks(static_cast<std::size_t>(config.cluster.racks));
  for (int r = 0; r < config.cluster.racks; ++r) {
    all_racks[static_cast<std::size_t>(r)] = r;
  }

  std::uint64_t prev_topology = 0;
  bool force_replan = false;  // set by last epoch's drift detector
  // Sticky planning size per (pipeline, day kind): what the current plan
  // assumes the job's input is. Re-anchored to the forecast only when the
  // two diverge by more than size_quantum, so the workload signature — and
  // with it the cache key — repeats across epochs whose forecasts agree
  // within the tolerance. 0 = not yet anchored.
  std::vector<std::array<Bytes, 2>> planning_inputs(
      pipelines.size(), std::array<Bytes, 2>{0.0, 0.0});

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    EpochReport report;
    report.epoch = epoch;
    report.day = config.warmup_days + epoch;
    report.weekend = is_weekend(report.day);
    report.outage = epoch == config.outage_epoch;

    // --- topology for this epoch (step 0: what world are we planning in) --
    std::vector<int> usable_racks = all_racks;
    if (report.outage) {
      usable_racks.erase(usable_racks.begin() + config.outage_rack);
    }
    report.planning_racks = static_cast<int>(usable_racks.size());
    const std::uint64_t topology_sig =
        topology_fingerprint(config.cluster, usable_racks);
    if (epoch > 0 && topology_sig != prev_topology) {
      report.invalidations = cache.invalidate_topology_changed(topology_sig);
    }
    prev_topology = topology_sig;

    // --- 1. predict -----------------------------------------------------
    std::vector<JobSpec> planning;  // what the planner (and cache key) see
    std::vector<JobSpec> realized;  // what actually runs
    planning.reserve(pipelines.size());
    realized.reserve(pipelines.size());
    const std::size_t kind = report.weekend ? 1 : 0;
    double error_sum = 0;
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      const RecurringPipeline& pipeline = pipelines[i];
      const JobSpecEstimate estimate = estimate_job_spec(
          pipeline.reference, pipeline.history, report.day, /*run_of_day=*/0,
          /*new_id=*/static_cast<int>(i), /*arrival=*/0.0);
      const JobInstance& truth = timeline_instance(pipeline, report.day);
      realized.push_back(scale_job_spec(pipeline.reference, truth.input_bytes,
                                        static_cast<int>(i),
                                        /*arrival=*/0.0));
      error_sum += std::abs(static_cast<double>(estimate.predicted_input) -
                            static_cast<double>(truth.input_bytes)) /
                   static_cast<double>(truth.input_bytes);
      // Quantization dead-band: re-anchor the sticky planning size only
      // when the forecast moved more than size_quantum away from it.
      Bytes& sticky = planning_inputs[i][kind];
      if (estimate.predicted_input > 0 &&
          (sticky <= 0 ||
           std::abs(estimate.predicted_input - sticky) / sticky >
               config.size_quantum)) {
        sticky = estimate.predicted_input;
        ++report.planning_updates;
      }
      planning.push_back(scale_job_spec(pipeline.reference, sticky,
                                        static_cast<int>(i),
                                        /*arrival=*/0.0));
    }
    report.mean_prediction_error =
        error_sum / static_cast<double>(pipelines.size());

    // --- 2. plan (through the cache) ------------------------------------
    const PlanCacheKey key{
        workload_fingerprint(planning, config.size_quantum), topology_sig,
        planner_sig};
    report.cache_key = key.combined();
    if (force_replan) {
      report.drift_replan = cache.invalidate(key);
      if (report.drift_replan) ++report.invalidations;
      force_replan = false;
    }
    const std::uint64_t rf_hits_before = rf_cache.hits();
    const std::uint64_t rf_misses_before = rf_cache.misses();
    Plan plan;
    if (const Plan* cached = cache.find(key); cached != nullptr) {
      report.cache_hit = true;
      plan = *cached;
      report.replan_cost_evals = 0;  // the whole point of the cache
    } else {
      planner_config.trace_sink = 1 + 2 * epoch;
      // Plan on a virtual cluster of |usable_racks| racks (response
      // functions memoized across epochs), then map virtual rack ids back
      // onto the surviving physical racks — the §7 subcluster trick
      // plan_offline's usable_racks overload uses, routed through the memo.
      const std::vector<ResponseFunction> functions =
          rf_cache.get_all(planning, report.planning_racks, params);
      plan = plan_offline(functions, report.planning_racks, planner_config);
      for (PlannedJob& job : plan.jobs) {
        for (int& r : job.racks) {
          r = usable_racks[static_cast<std::size_t>(r)];
        }
      }
      report.replan_cost_evals = plan.evaluated_candidates;
      cache.insert(key, plan);
    }
    report.rf_hits = rf_cache.hits() - rf_hits_before;
    report.rf_misses = rf_cache.misses() - rf_misses_before;
    report.predicted_makespan = plan.predicted_makespan;

    // --- 3. execute (the realized instances, not the predictions) -------
    const PlanLookup lookup(planning, plan);
    BatchCase batch_case;
    batch_case.label = "epoch" + std::to_string(epoch);
    batch_case.jobs = realized;
    batch_case.config.cluster = config.cluster;
    batch_case.config.seed = substream(config.seed, epoch);
    batch_case.config.tracer = config.tracer;
    batch_case.config.trace_sink = 2 + 2 * epoch;
    batch_case.config.trace_label = batch_case.label + "/sim";
    if (report.outage) {
      for (int m = 0; m < config.cluster.machines_per_rack; ++m) {
        batch_case.config.failed_machines.push_back(
            config.outage_rack * config.cluster.machines_per_rack + m);
      }
    }
    batch_case.make_policy = [&lookup] {
      return std::make_unique<CorralPolicy>(&lookup);
    };
    const std::vector<BatchResult> batch =
        runner.run(std::span<const BatchCase>(&batch_case, 1));
    const SimResult& sim = batch.front().result;

    // --- 4. measure -----------------------------------------------------
    report.realized_makespan = sim.makespan;
    report.makespan_error =
        plan.predicted_makespan > 0
            ? std::abs(sim.makespan - plan.predicted_makespan) /
                  plan.predicted_makespan
            : 0.0;
    report.jobs_failed = sim.jobs_failed;
    double completion_error_sum = 0;
    int completion_samples = 0;
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      const JobResult* job = sim.find_job(static_cast<int>(i));
      const PlannedJob* planned = lookup.find(static_cast<int>(i));
      if (job == nullptr || job->failed || planned == nullptr) continue;
      const Seconds expected = planned->predicted_completion();
      if (expected <= 0) continue;
      completion_error_sum += std::abs(job->finish - expected) / expected;
      ++completion_samples;
    }
    report.mean_completion_error =
        completion_samples > 0 ? completion_error_sum / completion_samples
                               : 0.0;

    // --- 5. replan: feedback + drift ------------------------------------
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      const JobResult* job = sim.find_job(static_cast<int>(i));
      if (job == nullptr || job->failed) continue;  // nothing observed
      record_instance(pipelines[i].history,
                      timeline_instance(pipelines[i], report.day));
      prune_history(pipelines[i].history, config.history_window_days);
    }
    if (report.mean_prediction_error > config.drift_threshold) {
      ++result.drift_trips;
      force_replan = true;
    }

    trace.span(obs::TraceTrack::kCtrl, "epoch", "ctrl", /*tid=*/0,
               /*start=*/epoch, /*end=*/epoch + 1,
               {obs::arg("day", static_cast<double>(report.day)),
                obs::arg("key", hex_key(report.cache_key)),
                obs::arg("hit", static_cast<double>(report.cache_hit)),
                obs::arg("prediction_error", report.mean_prediction_error),
                obs::arg("replan_evals",
                         static_cast<double>(report.replan_cost_evals))});

    result.epochs.push_back(std::move(report));
  }

  result.cache = cache.stats();
  result.rf_hits = rf_cache.hits();
  result.rf_misses = rf_cache.misses();
  double error_sum = 0;
  for (const EpochReport& report : result.epochs) {
    error_sum += report.mean_prediction_error;
  }
  result.mean_prediction_error =
      error_sum / static_cast<double>(result.epochs.size());

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.counter("ctrl.epochs").add(static_cast<double>(config.epochs));
    m.counter("ctrl.cache.hits").add(static_cast<double>(result.cache.hits));
    m.counter("ctrl.cache.misses")
        .add(static_cast<double>(result.cache.misses));
    m.counter("ctrl.cache.invalidations")
        .add(static_cast<double>(result.cache.invalidations));
    m.counter("ctrl.cache.evictions")
        .add(static_cast<double>(result.cache.evictions));
    m.counter("ctrl.drift_trips").add(static_cast<double>(result.drift_trips));
    m.counter("ctrl.rf.hits").add(static_cast<double>(result.rf_hits));
    m.counter("ctrl.rf.misses").add(static_cast<double>(result.rf_misses));
    double replan_evals = 0;
    for (const EpochReport& report : result.epochs) {
      replan_evals += static_cast<double>(report.replan_cost_evals);
    }
    m.counter("ctrl.replan_evals").add(replan_evals);
    m.gauge("ctrl.mean_prediction_error").set(result.mean_prediction_error);
    m.gauge("ctrl.hit_rate_after_2").set(result.hit_rate_after(2));
  }
  return result;
}

}  // namespace corral
