#include "ctrl/control_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "corral/fingerprint.h"
#include "ctrl/checkpoint.h"
#include "exec/exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/batch.h"
#include "util/check.h"

namespace corral {
namespace {

// Splitmix-style per-index stream separation, matching the seed derivation
// used elsewhere in the tree (one independent stream per epoch / pipeline).
std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

bool is_weekend(int day) { return day % 7 == 5 || day % 7 == 6; }

std::string hex_key(std::uint64_t key) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

// The realized instance for (day, run 0) of a pipeline's exogenous
// timeline; throws when the timeline does not cover the day.
const JobInstance& timeline_instance(const RecurringPipeline& pipeline,
                                     int day) {
  for (const JobInstance& instance : pipeline.timeline) {
    if (instance.day == day && instance.run_of_day == 0) return instance;
  }
  require(false, "run_control_loop: pipeline '" + pipeline.reference.name +
                     "' timeline does not cover day " + std::to_string(day));
  return pipeline.timeline.front();  // unreachable
}

// Racks down during this epoch, sorted, deduplicated.
std::vector<int> outage_racks_for_epoch(const ControlLoopConfig& config,
                                        int epoch) {
  std::vector<int> racks;
  for (const RackOutage& outage : config.outages) {
    if (outage.epoch == epoch) racks.push_back(outage.rack);
  }
  std::sort(racks.begin(), racks.end());
  racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
  return racks;
}

}  // namespace

void ControlLoopConfig::validate() const {
  require(epochs > 0, "ControlLoopConfig: epochs must be positive");
  require(warmup_days >= 1, "ControlLoopConfig: warmup_days must be >= 1");
  require(std::isfinite(drift_threshold) && drift_threshold > 0,
          "ControlLoopConfig: drift_threshold must be positive and finite");
  require(std::isfinite(size_quantum) && size_quantum > 0,
          "ControlLoopConfig: size_quantum must be positive and finite");
  require(history_window_days >= 0,
          "ControlLoopConfig: history_window_days must be >= 0");
  require(cache_capacity >= 1,
          "ControlLoopConfig: cache_capacity must be >= 1");
  require(cluster.racks >= 1 && cluster.machines_per_rack >= 1 &&
              cluster.slots_per_machine >= 1,
          "ControlLoopConfig: cluster must have racks, machines and slots");
  for (std::size_t i = 0; i < outages.size(); ++i) {
    const RackOutage& outage = outages[i];
    require(outage.epoch >= 0 && outage.epoch < epochs,
            "ControlLoopConfig: outage epoch out of range");
    require(outage.rack >= 0 && outage.rack < cluster.racks,
            "ControlLoopConfig: outage rack out of range");
    require(cluster.racks >= 2,
            "ControlLoopConfig: an outage needs at least 2 racks");
    for (std::size_t j = 0; j < i; ++j) {
      require(!(outages[j] == outage),
              "ControlLoopConfig: duplicate outage entry");
    }
  }
  // Every rack down in one epoch would leave nothing to plan or run on.
  for (int epoch = 0; epoch < epochs; ++epoch) {
    int down = 0;
    for (const RackOutage& outage : outages) {
      if (outage.epoch == epoch) ++down;
    }
    require(down < cluster.racks,
            "ControlLoopConfig: epoch " + std::to_string(epoch) +
                " would lose every rack");
  }
  chaos.validate();
  resilience.validate();
  if (resilience.enabled) {
    require(resilience.outlier_factor > 1.0 + size_quantum,
            "ControlLoopConfig: outlier_factor must exceed 1 + size_quantum "
            "or every re-anchor would quarantine");
  }
}

double ControlLoopResult::hit_rate_after(int after_epoch) const {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;
  for (const EpochReport& report : epochs) {
    if (report.epoch <= after_epoch) continue;
    ++total;
    if (report.cache_hit) ++hits;
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

std::vector<RecurringPipeline> make_recurring_fleet(const W1Config& config,
                                                    int warmup_days,
                                                    int epochs,
                                                    std::uint64_t seed) {
  require(warmup_days >= 1, "make_recurring_fleet: warmup_days must be >= 1");
  require(epochs > 0, "make_recurring_fleet: epochs must be positive");
  Rng rng(seed);
  const std::vector<JobSpec> jobs = make_w1(config, rng);
  std::vector<RecurringPipeline> fleet;
  fleet.reserve(jobs.size());
  const int days = warmup_days + epochs;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    RecurringPipeline pipeline;
    pipeline.reference = jobs[j];
    pipeline.reference.recurring = true;
    RecurringJobTemplate& shape = pipeline.shape;
    shape.name = jobs[j].name;
    shape.base_input = jobs[j].total_input();
    shape.weekday_factor = 1.0;
    // Per-pipeline seasonality: distinct weekend dips and growth rates so
    // the fleet's day-to-day shifts are not perfectly correlated.
    shape.weekend_factor = 0.5 + 0.04 * static_cast<double>(j % 8);
    shape.noise = 0.065;  // the paper's 6.5% prediction error (§2, Fig 1)
    shape.drift_per_day = 0.001 + 0.0005 * static_cast<double>(j % 3);
    shape.runs_per_day = 1;
    Rng job_rng(substream(seed, j));
    pipeline.timeline = generate_history(shape, days, job_rng);
    pipeline.history.assign(
        pipeline.timeline.begin(),
        pipeline.timeline.begin() +
            std::min<std::size_t>(pipeline.timeline.size(),
                                  static_cast<std::size_t>(warmup_days)));
    fleet.push_back(std::move(pipeline));
  }
  return fleet;
}

ControlLoopResult run_control_loop(std::vector<RecurringPipeline> pipelines,
                                   const ControlLoopConfig& config) {
  config.validate();
  require(!pipelines.empty(), "run_control_loop: need at least one pipeline");
  for (const RecurringPipeline& pipeline : pipelines) {
    pipeline.reference.validate();
    require(!pipeline.timeline.empty(),
            "run_control_loop: pipeline timeline is empty");
    for (const JobInstance& instance : pipeline.timeline) {
      require(std::isfinite(instance.input_bytes) && instance.input_bytes > 0,
              "run_control_loop: pipeline '" + pipeline.reference.name +
                  "' timeline has a non-finite or non-positive input");
    }
  }

  PlannerConfig planner_config;
  planner_config.objective = config.objective;
  planner_config.pool = config.pool;
  planner_config.tracer = config.tracer;
  const std::uint64_t planner_sig = planner_fingerprint(planner_config);
  const LatencyModelParams params =
      LatencyModelParams::from_cluster(config.cluster);
  const std::uint64_t config_sig =
      control_loop_fingerprint(config, pipelines);

  ChaosSchedule chaos_schedule;
  if (!config.chaos.empty()) {
    const std::uint64_t chaos_seed =
        config.chaos_seed != 0 ? config.chaos_seed
                               : substream(config.seed, 0xC4A05u);
    chaos_schedule =
        ChaosSchedule(config.chaos, config.epochs,
                      static_cast<int>(pipelines.size()), chaos_seed);
  }
  const ResilienceConfig& guard = config.resilience;
  ErrorBudget budget(guard.enabled ? guard.demote_after : 0,
                     guard.promote_after);

  PlanCache cache(config.cache_capacity);
  ResponseFunctionCache rf_cache(config.size_quantum);
  const BatchRunner runner(config.pool);

  ControlLoopResult result;
  result.epochs.reserve(static_cast<std::size_t>(config.epochs));

  std::vector<int> all_racks(static_cast<std::size_t>(config.cluster.racks));
  for (int r = 0; r < config.cluster.racks; ++r) {
    all_racks[static_cast<std::size_t>(r)] = r;
  }

  int start_epoch = 0;
  std::uint64_t prev_topology = 0;
  bool force_replan = false;  // set by a past epoch's drift detector
  // Sticky planning size per (pipeline, day kind): what the current plan
  // assumes the job's input is. Re-anchored to the forecast only when the
  // two diverge by more than size_quantum, so the workload signature — and
  // with it the cache key — repeats across epochs whose forecasts agree
  // within the tolerance. 0 = not yet anchored.
  std::vector<std::array<Bytes, 2>> planning_inputs(
      pipelines.size(), std::array<Bytes, 2>{0.0, 0.0});
  // Last plan that drove a successful epoch, for deadline-overrun fallback.
  bool has_last_good = false;
  Plan last_good_plan;
  std::uint64_t last_good_topology = 0;

  if (!config.resume_path.empty()) {
    CheckpointState saved = read_checkpoint(config.resume_path);
    require(saved.config_fingerprint == config_sig,
            "run_control_loop: checkpoint '" + config.resume_path +
                "' was written by a different config or fleet");
    require(saved.planning_inputs.size() == pipelines.size() &&
                saved.histories.size() == pipelines.size(),
            "run_control_loop: checkpoint pipeline count mismatch");
    require(saved.next_epoch >= 0 && saved.next_epoch <= config.epochs,
            "run_control_loop: checkpoint next_epoch out of range");
    start_epoch = saved.next_epoch;
    prev_topology = saved.prev_topology;
    force_replan = saved.force_replan;
    budget.restore(saved.budget_mode, saved.budget_bad, saved.budget_good,
                   saved.budget_demotions, saved.budget_promotions);
    planning_inputs = saved.planning_inputs;
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      pipelines[i].history = saved.histories[i];
    }
    result.epochs = saved.reports;
    result.drift_trips = saved.drift_trips;
    has_last_good = saved.has_last_good;
    last_good_plan = saved.last_good_plan;
    last_good_topology = saved.last_good_topology;
    cache.restore(saved.plan_cache);
    rf_cache.restore(saved.rf_entries, saved.rf_hits, saved.rf_misses);
    if (config.tracer != nullptr) {
      obs::restore_tracer(*config.tracer, saved.trace);
    }
  }

  // Bound *after* a possible restore replays old sinks into the tracer.
  const obs::TraceRecorder trace(config.tracer, /*sink_id=*/0, "ctrl");

  const auto save_checkpoint = [&](int completed_epoch) {
    if (config.checkpoint_path.empty()) return;
    CheckpointState state;
    state.config_fingerprint = config_sig;
    state.next_epoch = completed_epoch + 1;
    state.prev_topology = prev_topology;
    state.force_replan = force_replan;
    state.budget_mode = budget.mode();
    state.budget_bad = budget.consecutive_bad();
    state.budget_good = budget.consecutive_good();
    state.budget_demotions = budget.demotions();
    state.budget_promotions = budget.promotions();
    state.planning_inputs = planning_inputs;
    state.histories.reserve(pipelines.size());
    for (const RecurringPipeline& pipeline : pipelines) {
      state.histories.push_back(pipeline.history);
    }
    state.reports = result.epochs;
    state.drift_trips = result.drift_trips;
    state.has_last_good = has_last_good;
    state.last_good_topology = last_good_topology;
    if (has_last_good) state.last_good_plan = last_good_plan;
    state.plan_cache = cache.snapshot();
    state.rf_entries = rf_cache.snapshot();
    state.rf_hits = rf_cache.hits();
    state.rf_misses = rf_cache.misses();
    if (config.tracer != nullptr) {
      state.trace = obs::snapshot_tracer(*config.tracer);
    }
    write_checkpoint(config.checkpoint_path, state);
  };

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    EpochReport report;
    report.epoch = epoch;
    report.day = config.warmup_days + epoch;
    report.weekend = is_weekend(report.day);
    report.mode = budget.mode();

    const std::vector<ChaosEvent> chaos_events =
        chaos_schedule.for_epoch(epoch);
    report.chaos_injected = static_cast<int>(chaos_events.size());
    const auto chaos_count = [&](ChaosFault fault) {
      int n = 0;
      for (const ChaosEvent& event : chaos_events) {
        if (event.fault == fault) ++n;
      }
      return n;
    };

    // --- topology for this epoch (step 0: what world are we planning in) --
    const std::vector<int> outage_racks =
        outage_racks_for_epoch(config, epoch);
    report.outage = !outage_racks.empty();
    std::vector<int> usable_racks;
    usable_racks.reserve(all_racks.size());
    for (int r : all_racks) {
      if (!std::binary_search(outage_racks.begin(), outage_racks.end(), r)) {
        usable_racks.push_back(r);
      }
    }
    // The planner's *view* of the topology. Stale-topology chaos hands the
    // planner a view with one healthy rack spuriously missing; the guardrail
    // revalidates the view against the authoritative rack set and plans on
    // the refreshed truth, while the unguarded loop plans on the stale view.
    std::vector<int> planner_view = usable_racks;
    if (chaos_count(ChaosFault::kStaleTopology) > 0) {
      report.stale_topology = true;
      if (!guard.enabled && planner_view.size() > 1) {
        int drop = 0;
        for (const ChaosEvent& event : chaos_events) {
          if (event.fault == ChaosFault::kStaleTopology) drop = event.target;
        }
        planner_view.erase(planner_view.begin() +
                           (drop % static_cast<int>(planner_view.size())));
      } else if (guard.enabled) {
        trace.instant(obs::TraceTrack::kCtrl, "stale_view_refreshed", "ctrl",
                      /*tid=*/0, /*ts=*/epoch);
      }
    }
    report.planning_racks = static_cast<int>(planner_view.size());
    const std::uint64_t topology_sig =
        topology_fingerprint(config.cluster, usable_racks);
    const std::uint64_t view_sig =
        planner_view == usable_racks
            ? topology_sig
            : topology_fingerprint(config.cluster, planner_view);
    if (epoch > 0 && topology_sig != prev_topology) {
      report.invalidations = cache.invalidate_topology_changed(topology_sig);
    }
    prev_topology = topology_sig;

    bool aborted = false;
    std::string abort_reason;

    // --- 1. predict -----------------------------------------------------
    std::vector<JobSpec> planning;  // what the planner (and cache key) see
    std::vector<JobSpec> realized;  // what actually runs
    planning.reserve(pipelines.size());
    realized.reserve(pipelines.size());
    const std::size_t kind = report.weekend ? 1 : 0;
    double error_sum = 0;
    for (std::size_t i = 0; i < pipelines.size() && !aborted; ++i) {
      const RecurringPipeline& pipeline = pipelines[i];
      const JobSpecEstimate estimate = estimate_job_spec(
          pipeline.reference, pipeline.history, report.day, /*run_of_day=*/0,
          /*new_id=*/static_cast<int>(i), /*arrival=*/0.0);
      double forecast = estimate.predicted_input;
      for (const ChaosEvent& event : chaos_events) {
        if (event.target != static_cast<int>(i)) continue;
        if (event.fault == ChaosFault::kPredictorSpike) {
          forecast *= event.magnitude;
        } else if (event.fault == ChaosFault::kPredictorNonFinite) {
          forecast = std::numeric_limits<double>::quiet_NaN();
        }
      }
      Bytes& sticky = planning_inputs[i][kind];
      if (guard.enabled) {
        // Input validation: quarantine non-finite, non-positive and outlier
        // forecasts; the planner sees the last anchored size instead.
        const Bytes reference =
            sticky > 0 ? sticky
                       : (pipeline.shape.base_input > 0
                              ? pipeline.shape.base_input
                              : pipeline.reference.total_input());
        if (!std::isfinite(forecast) || forecast <= 0 ||
            forecast > reference * guard.outlier_factor ||
            forecast < reference / guard.outlier_factor) {
          forecast = reference;
          ++report.quarantined;
          trace.instant(obs::TraceTrack::kCtrl, "quarantine", "ctrl",
                        /*tid=*/static_cast<long>(i), /*ts=*/epoch);
        }
      } else if (!std::isfinite(forecast) || forecast <= 0) {
        // Unguarded: a garbage forecast kills the epoch — nothing sane can
        // be planned or published.
        aborted = true;
        abort_reason = "nonfinite_forecast";
        break;
      }
      const JobInstance& truth = timeline_instance(pipeline, report.day);
      realized.push_back(scale_job_spec(pipeline.reference, truth.input_bytes,
                                        static_cast<int>(i),
                                        /*arrival=*/0.0));
      error_sum += std::abs(forecast -
                            static_cast<double>(truth.input_bytes)) /
                   static_cast<double>(truth.input_bytes);
      // Quantization dead-band: re-anchor the sticky planning size only
      // when the forecast moved more than size_quantum away from it.
      if (forecast > 0 &&
          (sticky <= 0 ||
           std::abs(forecast - sticky) / sticky > config.size_quantum)) {
        sticky = forecast;
        ++report.planning_updates;
      }
      planning.push_back(scale_job_spec(pipeline.reference, sticky,
                                        static_cast<int>(i),
                                        /*arrival=*/0.0));
    }
    if (!aborted) {
      report.mean_prediction_error =
          error_sum / static_cast<double>(pipelines.size());
    }

    // --- 2. plan (through the cache; skipped when demoted) ---------------
    Plan plan;
    bool have_plan = false;
    if (!aborted && report.mode == ControlMode::kPlanned) {
      // Cache-store chaos lands before the lookup.
      if (chaos_count(ChaosFault::kCacheCorrupt) > 0) cache.corrupt_oldest();
      if (chaos_count(ChaosFault::kCacheLoss) > 0) {
        report.invalidations += cache.invalidate_all();
      }
      const PlanCacheKey key{
          workload_fingerprint(planning, config.size_quantum), view_sig,
          planner_sig};
      report.cache_key = key.combined();
      if (force_replan) {
        report.drift_replan = cache.invalidate(key);
        if (report.drift_replan) ++report.invalidations;
        force_replan = false;
      }
      const std::uint64_t rf_hits_before = rf_cache.hits();
      const std::uint64_t rf_misses_before = rf_cache.misses();
      if (const Plan* cached = cache.find(key); cached != nullptr) {
        report.cache_hit = true;
        plan = *cached;
        report.replan_cost_evals = 0;  // the whole point of the cache
        have_plan = true;
      } else {
        planner_config.trace_sink = 1 + 2 * epoch;
        // Plan on a virtual cluster of |planner_view| racks (response
        // functions memoized across epochs), then map virtual rack ids back
        // onto the surviving physical racks — the §7 subcluster trick
        // plan_offline's usable_racks overload uses, routed through the
        // memo.
        const std::vector<ResponseFunction> functions =
            rf_cache.get_all(planning, report.planning_racks, params);
        plan =
            plan_offline(functions, report.planning_racks, planner_config);
        for (PlannedJob& job : plan.jobs) {
          for (int& r : job.racks) {
            r = planner_view[static_cast<std::size_t>(r)];
          }
        }
        report.replan_cost_evals = plan.evaluated_candidates;
        // Planner deadline: a chaos overrun, or a real provisioning search
        // that blew its evaluation budget.
        report.planner_overrun =
            chaos_count(ChaosFault::kPlannerOverrun) > 0 ||
            (guard.enabled && guard.planner_budget_evals > 0 &&
             plan.evaluated_candidates > guard.planner_budget_evals);
        if (report.planner_overrun) {
          trace.instant(obs::TraceTrack::kCtrl, "planner_overrun", "ctrl",
                        /*tid=*/0, /*ts=*/epoch);
        }
        if (report.planner_overrun && !guard.enabled) {
          // Unguarded: the deadline passed with nothing published.
          aborted = true;
          abort_reason = "planner_overrun";
        } else {
          cache.insert(key, plan);
          have_plan = true;
          if (report.planner_overrun && has_last_good &&
              last_good_topology == view_sig) {
            // Guarded: publish the last good plan instead of publishing
            // late. The fresh plan stays cached for the next epoch.
            plan = last_good_plan;
            report.fallback_plan = true;
            trace.instant(obs::TraceTrack::kCtrl, "fallback_plan", "ctrl",
                          /*tid=*/0, /*ts=*/epoch);
          }
        }
      }
      report.rf_hits = rf_cache.hits() - rf_hits_before;
      report.rf_misses = rf_cache.misses() - rf_misses_before;
      if (have_plan) report.predicted_makespan = plan.predicted_makespan;
    }

    // --- 3. execute (the realized instances, not the predictions) -------
    std::optional<PlanLookup> lookup;
    if (have_plan) lookup.emplace(planning, plan);
    const SimResult* sim = nullptr;
    std::vector<BatchResult> batch;
    if (!aborted) {
      const int failing_attempts = chaos_count(ChaosFault::kExecFailure);
      double abort_fraction = 0;
      for (const ChaosEvent& event : chaos_events) {
        if (event.fault == ChaosFault::kExecFailure) {
          abort_fraction = event.magnitude;
        }
      }
      const int max_attempts = guard.enabled ? 1 + guard.max_retries : 1;
      Seconds backoff = guard.retry_backoff;
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        BatchCase batch_case;
        batch_case.label = "epoch" + std::to_string(epoch);
        batch_case.jobs = realized;
        batch_case.config.cluster = config.cluster;
        batch_case.config.seed = substream(config.seed, epoch);
        batch_case.config.tracer = config.tracer;
        batch_case.config.trace_sink = 2 + 2 * epoch;
        batch_case.config.trace_label = batch_case.label + "/sim";
        if (attempt < failing_attempts) {
          // Injected execution failure: this attempt dies partway through
          // the epoch's predicted span.
          const Seconds horizon = report.predicted_makespan > 0
                                      ? report.predicted_makespan
                                      : 3600.0;
          batch_case.config.abort_at_time =
              std::max(1.0, abort_fraction * horizon);
        }
        for (int rack : outage_racks) {
          for (int m = 0; m < config.cluster.machines_per_rack; ++m) {
            batch_case.config.failed_machines.push_back(
                rack * config.cluster.machines_per_rack + m);
          }
        }
        batch_case.make_policy =
            [&lookup]() -> std::unique_ptr<SchedulingPolicy> {
          if (lookup.has_value()) {
            return std::make_unique<CorralPolicy>(&*lookup);
          }
          return std::make_unique<YarnCapacityPolicy>();
        };
        try {
          batch = runner.run(std::span<const BatchCase>(&batch_case, 1));
          sim = &batch.front().result;
          break;
        } catch (const SimulationAborted&) {
          if (attempt + 1 >= max_attempts) {
            aborted = true;
            abort_reason = "exec_failure";
            break;
          }
          ++report.exec_retries;
          trace.instant(obs::TraceTrack::kCtrl, "exec_retry", "ctrl",
                        /*tid=*/0, /*ts=*/epoch,
                        {obs::arg("backoff_s", backoff)});
          backoff *= 2;  // virtual-time backoff before the next attempt
        }
      }
    }

    // --- 4. measure -----------------------------------------------------
    if (sim != nullptr) {
      report.realized_makespan = sim->makespan;
      report.makespan_error =
          report.predicted_makespan > 0
              ? std::abs(sim->makespan - report.predicted_makespan) /
                    report.predicted_makespan
              : 0.0;
      report.jobs_failed = sim->jobs_failed;
      double completion_error_sum = 0;
      int completion_samples = 0;
      if (lookup.has_value()) {
        for (std::size_t i = 0; i < pipelines.size(); ++i) {
          const JobResult* job = sim->find_job(static_cast<int>(i));
          const PlannedJob* planned = lookup->find(static_cast<int>(i));
          if (job == nullptr || job->failed || planned == nullptr) continue;
          const Seconds expected = planned->predicted_completion();
          if (expected <= 0) continue;
          completion_error_sum += std::abs(job->finish - expected) / expected;
          ++completion_samples;
        }
      }
      report.mean_completion_error =
          completion_samples > 0 ? completion_error_sum / completion_samples
                                 : 0.0;

      // --- 5. replan: feedback + drift ----------------------------------
      for (std::size_t i = 0; i < pipelines.size(); ++i) {
        const JobResult* job = sim->find_job(static_cast<int>(i));
        if (job == nullptr || job->failed) continue;  // nothing observed
        record_instance(pipelines[i].history,
                        timeline_instance(pipelines[i], report.day));
        prune_history(pipelines[i].history, config.history_window_days);
      }
    }

    report.aborted = aborted;
    if (aborted) {
      report.mean_prediction_error = 0;
      trace.instant(obs::TraceTrack::kCtrl, "epoch_aborted", "ctrl",
                    /*tid=*/0, /*ts=*/epoch,
                    {obs::arg("reason", abort_reason)});
    }

    const bool over_threshold =
        aborted || report.mean_prediction_error > config.drift_threshold;
    if (!aborted && report.mean_prediction_error > config.drift_threshold) {
      ++result.drift_trips;
      force_replan = true;
    }
    if (!aborted && report.mode == ControlMode::kPlanned && have_plan) {
      has_last_good = true;
      last_good_plan = plan;
      last_good_topology = view_sig;
    }
    // Error budget: aborted and over-drift epochs burn it; clean epochs
    // restore it. Transitions fire *after* the epoch that spent the budget.
    if (budget.record(over_threshold)) {
      if (budget.mode() == ControlMode::kReactive) {
        report.demoted = true;
        trace.instant(obs::TraceTrack::kCtrl, "demote", "ctrl", /*tid=*/0,
                      /*ts=*/epoch);
      } else {
        report.promoted = true;
        trace.instant(obs::TraceTrack::kCtrl, "promote", "ctrl", /*tid=*/0,
                      /*ts=*/epoch);
      }
    }

    trace.span(obs::TraceTrack::kCtrl, "epoch", "ctrl", /*tid=*/0,
               /*start=*/epoch, /*end=*/epoch + 1,
               {obs::arg("day", static_cast<double>(report.day)),
                obs::arg("key", hex_key(report.cache_key)),
                obs::arg("hit", static_cast<double>(report.cache_hit)),
                obs::arg("prediction_error", report.mean_prediction_error),
                obs::arg("replan_evals",
                         static_cast<double>(report.replan_cost_evals)),
                obs::arg("mode", std::string(to_string(report.mode))),
                obs::arg("chaos", static_cast<double>(report.chaos_injected)),
                obs::arg("aborted", static_cast<double>(report.aborted))});

    result.epochs.push_back(std::move(report));
    save_checkpoint(epoch);
    if (chaos_schedule.crash_after(epoch)) {
      // Whole-process crash: the run ends here; a later run resumes from
      // the checkpoint just written and replays nothing.
      result.crashed_after = epoch;
      trace.instant(obs::TraceTrack::kCtrl, "crash", "ctrl", /*tid=*/0,
                    /*ts=*/epoch + 1);
      break;
    }
  }

  result.cache = cache.stats();
  result.rf_hits = rf_cache.hits();
  result.rf_misses = rf_cache.misses();
  double error_sum = 0;
  int completed = 0;
  for (const EpochReport& report : result.epochs) {
    if (report.aborted) {
      ++result.epochs_aborted;
      continue;
    }
    ++completed;
    error_sum += report.mean_prediction_error;
  }
  result.epochs_completed = completed;
  result.mean_prediction_error =
      completed > 0 ? error_sum / static_cast<double>(completed) : 0.0;
  for (const EpochReport& report : result.epochs) {
    result.chaos_events += report.chaos_injected;
    result.quarantined += report.quarantined;
    result.exec_retries += report.exec_retries;
    if (report.fallback_plan) ++result.fallbacks;
    if (report.planner_overrun) ++result.overruns;
    if (report.stale_topology) ++result.stale_views;
  }
  result.demotions = budget.demotions();
  result.promotions = budget.promotions();

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.counter("ctrl.epochs")
        .add(static_cast<double>(result.epochs.size()));
    m.counter("ctrl.cache.hits").add(static_cast<double>(result.cache.hits));
    m.counter("ctrl.cache.misses")
        .add(static_cast<double>(result.cache.misses));
    m.counter("ctrl.cache.invalidations")
        .add(static_cast<double>(result.cache.invalidations));
    m.counter("ctrl.cache.evictions")
        .add(static_cast<double>(result.cache.evictions));
    m.counter("ctrl.cache.corruptions")
        .add(static_cast<double>(result.cache.corruptions));
    m.counter("ctrl.drift_trips").add(static_cast<double>(result.drift_trips));
    m.counter("ctrl.rf.hits").add(static_cast<double>(result.rf_hits));
    m.counter("ctrl.rf.misses").add(static_cast<double>(result.rf_misses));
    double replan_evals = 0;
    for (const EpochReport& report : result.epochs) {
      replan_evals += static_cast<double>(report.replan_cost_evals);
    }
    m.counter("ctrl.replan_evals").add(replan_evals);
    m.gauge("ctrl.mean_prediction_error").set(result.mean_prediction_error);
    m.gauge("ctrl.hit_rate_after_2").set(result.hit_rate_after(2));
    m.counter("ctrl.resilience.chaos_events")
        .add(static_cast<double>(result.chaos_events));
    m.counter("ctrl.resilience.quarantined")
        .add(static_cast<double>(result.quarantined));
    m.counter("ctrl.resilience.exec_retries")
        .add(static_cast<double>(result.exec_retries));
    m.counter("ctrl.resilience.fallbacks")
        .add(static_cast<double>(result.fallbacks));
    m.counter("ctrl.resilience.overruns")
        .add(static_cast<double>(result.overruns));
    m.counter("ctrl.resilience.stale_views")
        .add(static_cast<double>(result.stale_views));
    m.counter("ctrl.resilience.demotions")
        .add(static_cast<double>(result.demotions));
    m.counter("ctrl.resilience.promotions")
        .add(static_cast<double>(result.promotions));
    m.counter("ctrl.resilience.epochs_aborted")
        .add(static_cast<double>(result.epochs_aborted));
    m.counter("ctrl.resilience.epochs_completed")
        .add(static_cast<double>(result.epochs_completed));
  }
  return result;
}

}  // namespace corral
