#include "ctrl/control_loop.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "corral/fingerprint.h"
#include "ctrl/checkpoint.h"
#include "ctrl/tenant.h"
#include "exec/exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/batch.h"
#include "util/check.h"

namespace corral {

void ControlLoopConfig::validate() const {
  require(epochs > 0, "ControlLoopConfig: epochs must be positive");
  require(warmup_days >= 1, "ControlLoopConfig: warmup_days must be >= 1");
  require(std::isfinite(drift_threshold) && drift_threshold > 0,
          "ControlLoopConfig: drift_threshold must be positive and finite");
  require(std::isfinite(size_quantum) && size_quantum > 0,
          "ControlLoopConfig: size_quantum must be positive and finite");
  require(history_window_days >= 0,
          "ControlLoopConfig: history_window_days must be >= 0");
  require(cache_capacity >= 1,
          "ControlLoopConfig: cache_capacity must be >= 1");
  require(cluster.racks >= 1 && cluster.machines_per_rack >= 1 &&
              cluster.slots_per_machine >= 1,
          "ControlLoopConfig: cluster must have racks, machines and slots");
  for (std::size_t i = 0; i < outages.size(); ++i) {
    const RackOutage& outage = outages[i];
    require(outage.epoch >= 0 && outage.epoch < epochs,
            "ControlLoopConfig: outage epoch out of range");
    require(outage.rack >= 0 && outage.rack < cluster.racks,
            "ControlLoopConfig: outage rack out of range");
    require(cluster.racks >= 2,
            "ControlLoopConfig: an outage needs at least 2 racks");
    for (std::size_t j = 0; j < i; ++j) {
      require(!(outages[j] == outage),
              "ControlLoopConfig: duplicate outage entry");
    }
  }
  // Every rack down in one epoch would leave nothing to plan or run on.
  for (int epoch = 0; epoch < epochs; ++epoch) {
    int down = 0;
    for (const RackOutage& outage : outages) {
      if (outage.epoch == epoch) ++down;
    }
    require(down < cluster.racks,
            "ControlLoopConfig: epoch " + std::to_string(epoch) +
                " would lose every rack");
  }
  chaos.validate();
  resilience.validate();
  if (resilience.enabled) {
    require(resilience.outlier_factor > 1.0 + size_quantum,
            "ControlLoopConfig: outlier_factor must exceed 1 + size_quantum "
            "or every re-anchor would quarantine");
  }
}

double ControlLoopResult::hit_rate_after(int after_epoch) const {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;
  for (const EpochReport& report : epochs) {
    // Aborted epochs published nothing — their cache outcome is not a
    // miss, it is absent — so they stay out of the denominator. A run
    // where *every* counted epoch aborted therefore divides by nothing;
    // return 0 instead of NaN.
    if (report.epoch <= after_epoch || report.aborted) continue;
    ++total;
    if (report.cache_hit) ++hits;
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

std::vector<RecurringPipeline> make_recurring_fleet(const W1Config& config,
                                                    int warmup_days,
                                                    int epochs,
                                                    std::uint64_t seed) {
  require(warmup_days >= 1, "make_recurring_fleet: warmup_days must be >= 1");
  require(epochs > 0, "make_recurring_fleet: epochs must be positive");
  Rng rng(seed);
  const std::vector<JobSpec> jobs = make_w1(config, rng);
  std::vector<RecurringPipeline> fleet;
  fleet.reserve(jobs.size());
  const int days = warmup_days + epochs;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    RecurringPipeline pipeline;
    pipeline.reference = jobs[j];
    pipeline.reference.recurring = true;
    RecurringJobTemplate& shape = pipeline.shape;
    shape.name = jobs[j].name;
    shape.base_input = jobs[j].total_input();
    shape.weekday_factor = 1.0;
    // Per-pipeline seasonality: distinct weekend dips and growth rates so
    // the fleet's day-to-day shifts are not perfectly correlated.
    shape.weekend_factor = 0.5 + 0.04 * static_cast<double>(j % 8);
    shape.noise = 0.065;  // the paper's 6.5% prediction error (§2, Fig 1)
    shape.drift_per_day = 0.001 + 0.0005 * static_cast<double>(j % 3);
    shape.runs_per_day = 1;
    Rng job_rng(ctrl_detail::substream(seed, j));
    pipeline.timeline = generate_history(shape, days, job_rng);
    pipeline.history.assign(
        pipeline.timeline.begin(),
        pipeline.timeline.begin() +
            std::min<std::size_t>(pipeline.timeline.size(),
                                  static_cast<std::size_t>(warmup_days)));
    fleet.push_back(std::move(pipeline));
  }
  return fleet;
}

void record_ctrl_metrics(obs::MetricsRegistry* metrics,
                         const ControlLoopResult& result) {
  if (metrics == nullptr) return;
  obs::MetricsRegistry& m = *metrics;
  m.counter("ctrl.epochs")
      .add(static_cast<double>(result.epochs.size()));
  m.counter("ctrl.cache.hits").add(static_cast<double>(result.cache.hits));
  m.counter("ctrl.cache.misses")
      .add(static_cast<double>(result.cache.misses));
  m.counter("ctrl.cache.invalidations")
      .add(static_cast<double>(result.cache.invalidations));
  m.counter("ctrl.cache.evictions")
      .add(static_cast<double>(result.cache.evictions));
  m.counter("ctrl.cache.corruptions")
      .add(static_cast<double>(result.cache.corruptions));
  m.counter("ctrl.drift_trips").add(static_cast<double>(result.drift_trips));
  m.counter("ctrl.rf.hits").add(static_cast<double>(result.rf_hits));
  m.counter("ctrl.rf.misses").add(static_cast<double>(result.rf_misses));
  double replan_evals = 0;
  for (const EpochReport& report : result.epochs) {
    replan_evals += static_cast<double>(report.replan_cost_evals);
  }
  m.counter("ctrl.replan_evals").add(replan_evals);
  m.gauge("ctrl.mean_prediction_error").set(result.mean_prediction_error);
  m.gauge("ctrl.hit_rate_after_2").set(result.hit_rate_after(2));
  m.counter("ctrl.resilience.chaos_events")
      .add(static_cast<double>(result.chaos_events));
  m.counter("ctrl.resilience.quarantined")
      .add(static_cast<double>(result.quarantined));
  m.counter("ctrl.resilience.exec_retries")
      .add(static_cast<double>(result.exec_retries));
  m.counter("ctrl.resilience.fallbacks")
      .add(static_cast<double>(result.fallbacks));
  m.counter("ctrl.resilience.overruns")
      .add(static_cast<double>(result.overruns));
  m.counter("ctrl.resilience.stale_views")
      .add(static_cast<double>(result.stale_views));
  m.counter("ctrl.resilience.demotions")
      .add(static_cast<double>(result.demotions));
  m.counter("ctrl.resilience.promotions")
      .add(static_cast<double>(result.promotions));
  m.counter("ctrl.resilience.epochs_aborted")
      .add(static_cast<double>(result.epochs_aborted));
  m.counter("ctrl.resilience.epochs_completed")
      .add(static_cast<double>(result.epochs_completed));
}

ControlLoopResult run_control_loop(std::vector<RecurringPipeline> pipelines,
                                   const ControlLoopConfig& config) {
  config.validate();
  ctrl_detail::validate_pipelines(pipelines, "run_control_loop");
  const std::uint64_t config_sig =
      control_loop_fingerprint(config, pipelines);

  // The whole single-tenant loop is one tenant of the service core: base
  // seed, sink base 0 and an empty label prefix make its outputs
  // bit-compatible with the pre-service implementation.
  TenantLoop tenant(std::move(pipelines), config, config.seed,
                    config.chaos_seed, /*sink_base=*/0,
                    /*label_prefix=*/"");

  int start_epoch = 0;
  if (!config.resume_path.empty()) {
    CheckpointState saved = read_checkpoint(config.resume_path);
    require(saved.config_fingerprint == config_sig,
            "run_control_loop: checkpoint '" + config.resume_path +
                "' was written by a different config or fleet");
    require(saved.next_epoch >= 0 && saved.next_epoch <= config.epochs,
            "run_control_loop: checkpoint next_epoch out of range");
    start_epoch = saved.next_epoch;
    tenant.restore_state(saved);
    if (config.tracer != nullptr) {
      obs::restore_tracer(*config.tracer, saved.trace);
    }
  }

  // Bound *after* a possible restore replays old sinks into the tracer.
  tenant.bind_trace();

  const BatchRunner runner(config.pool);

  std::vector<int> all_racks(static_cast<std::size_t>(config.cluster.racks));
  for (int r = 0; r < config.cluster.racks; ++r) {
    all_racks[static_cast<std::size_t>(r)] = r;
  }

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    const std::vector<int> outage_racks =
        ctrl_detail::outage_racks_for_epoch(config, epoch);
    std::vector<int> usable_racks;
    usable_racks.reserve(all_racks.size());
    for (int r : all_racks) {
      if (!std::binary_search(outage_racks.begin(), outage_racks.end(), r)) {
        usable_racks.push_back(r);
      }
    }
    tenant.run_epoch(epoch, usable_racks, !outage_racks.empty(), runner);

    if (!config.checkpoint_path.empty()) {
      CheckpointState state;
      state.config_fingerprint = config_sig;
      state.next_epoch = epoch + 1;
      tenant.save_state(state);
      if (config.tracer != nullptr) {
        state.trace = obs::snapshot_tracer(*config.tracer);
      }
      write_checkpoint(config.checkpoint_path, state);
    }
    if (tenant.crash_after(epoch)) {
      tenant.note_crash(epoch);
      break;
    }
  }

  ControlLoopResult result = tenant.finish();
  record_ctrl_metrics(config.metrics, result);
  return result;
}

}  // namespace corral
