// Control-loop checkpoint/restore (docs/control_plane.md "Failure modes
// and guardrails").
//
// After every completed epoch the loop can persist its entire mutable
// state — plan cache, response-function memo, predictor histories, sticky
// planning sizes, error-budget machine, per-epoch reports and the trace
// events recorded so far — to a single versioned, checksummed text file. A
// later `corral_loop --resume <ckpt>` (after a real kill or a chaos kCrash)
// reconstructs that state and continues from the next epoch; because the
// loop is virtual-time and seed-driven, the resumed run's reports, traces
// and metrics are byte-identical to an uninterrupted run at any pool width.
//
// Format: line-oriented text. The first line is a version magic; every
// floating-point value is stored as the hex image of its IEEE-754 bits
// (exact round-trip — obs::format_double's shortest-decimal form is for
// human-facing JSON, not for state); strings are length-prefixed raw
// bytes; the last line is an FNV-1a checksum of everything before it.
// read_checkpoint rejects a bad magic, a truncated body or a checksum
// mismatch with std::invalid_argument — a torn write surfaces as a clean
// error, never as silently wrong state.
#ifndef CORRAL_CTRL_CHECKPOINT_H_
#define CORRAL_CTRL_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "corral/latency_model.h"
#include "ctrl/control_loop.h"
#include "ctrl/plan_cache.h"
#include "ctrl/resilience.h"
#include "obs/trace.h"

namespace corral {

// Everything run_control_loop mutates across epochs. The loop populates
// this after each epoch (checkpoint_path) and consumes it before its first
// epoch (resume_path).
struct CheckpointState {
  // control_loop_fingerprint of the run that wrote the checkpoint; resume
  // refuses a mismatch (different config, chaos regime or fleet).
  std::uint64_t config_fingerprint = 0;

  int next_epoch = 0;  // first epoch the resumed loop should run
  std::uint64_t prev_topology = 0;
  bool force_replan = false;  // pending drift-triggered invalidation

  // ErrorBudget machine state.
  ControlMode budget_mode = ControlMode::kPlanned;
  int budget_bad = 0;
  int budget_good = 0;
  int budget_demotions = 0;
  int budget_promotions = 0;

  // Per-pipeline sticky planning sizes [weekday, weekend] and predictor
  // histories (the feedback edge's accumulated observations).
  std::vector<std::array<Bytes, 2>> planning_inputs;
  std::vector<std::vector<JobInstance>> histories;

  // Completed epochs' reports and the running drift-trip count.
  std::vector<EpochReport> reports;
  int drift_trips = 0;

  // Last-good plan for deadline-overrun fallback, with the topology it was
  // planned against (a fallback across a topology change would reference
  // dead racks).
  bool has_last_good = false;
  std::uint64_t last_good_topology = 0;
  Plan last_good_plan;

  PlanCache::Snapshot plan_cache;

  ResponseFunctionCache::Snapshot rf_entries;
  std::uint64_t rf_hits = 0;
  std::uint64_t rf_misses = 0;

  // Trace events recorded so far (empty when tracing is off).
  obs::TraceSnapshot trace;
};

// Fingerprint over everything a checkpoint's meaning depends on: the loop
// config (cluster, objective, thresholds, outage list, chaos spec + seed,
// resilience knobs) and the fleet (references, shapes and the full
// exogenous timelines). Pool/tracer/metrics pointers and the checkpoint
// paths themselves are excluded — resuming under a different thread count
// or output wiring is exactly the supported case.
std::uint64_t control_loop_fingerprint(
    const ControlLoopConfig& config,
    const std::vector<RecurringPipeline>& pipelines);

std::string serialize_checkpoint(const CheckpointState& state);
// Throws std::invalid_argument on bad magic, truncation, malformed fields
// or checksum mismatch.
CheckpointState deserialize_checkpoint(const std::string& text);

// File wrappers; write is atomic-enough for the single-writer loop (write
// to path + ".tmp", then rename). Throw std::runtime_error on I/O failure.
void write_checkpoint(const std::string& path, const CheckpointState& state);
CheckpointState read_checkpoint(const std::string& path);

// ---------------------------------------------------------------------------
// Multi-tenant service checkpoint (format v2).
//
// The v2 format carries one per-tenant section per TenantLoop — the same
// body layout a v1 checkpoint uses for its single fleet — behind a
// service-level fingerprint (control_service_fingerprint, which mixes
// every tenant's control_loop_fingerprint with its name and priority) and
// one shared trace snapshot spanning every tenant's sinks. Shard count and
// pool width are excluded from the gate: resuming under a different
// execution width is exactly the supported case. v1 files are unchanged
// and the two formats reject each other by version magic.

struct ServiceCheckpointState {
  // control_service_fingerprint of the run that wrote the checkpoint.
  std::uint64_t config_fingerprint = 0;
  int next_epoch = 0;  // first epoch the resumed service should run
  // One section per tenant, in tenant-id order. The driver-level fields of
  // each section (config_fingerprint, next_epoch, trace) are unused; the
  // service owns those at the top level.
  std::vector<CheckpointState> tenants;
  // Trace events recorded so far across every tenant's sinks.
  obs::TraceSnapshot trace;
};

std::string serialize_service_checkpoint(const ServiceCheckpointState& state);
// Throws std::invalid_argument on bad magic/version (including a v1 file),
// truncation, malformed fields or checksum mismatch.
ServiceCheckpointState deserialize_service_checkpoint(
    const std::string& text);

void write_service_checkpoint(const std::string& path,
                              const ServiceCheckpointState& state);
ServiceCheckpointState read_service_checkpoint(const std::string& path);

}  // namespace corral

#endif  // CORRAL_CTRL_CHECKPOINT_H_
