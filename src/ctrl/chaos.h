// Deterministic chaos injection for the control plane
// (docs/control_plane.md "Failure modes and guardrails").
//
// Corral's premise is that plans computed ahead of time must survive a
// messy runtime. PR 1 gave the *cluster* fault injection (§7: machine
// churn, rack outages, stragglers); this module injects faults into the
// *control plane itself* — the predictor, the planner, the plan cache and
// the loop process — so the guardrail policy in run_control_loop can be
// exercised and measured (bench_chaos).
//
// Everything derives from (spec, seed): the full fault schedule is
// precomputed before the loop starts, so a run is reproducible from its
// flags, a resumed run re-derives the identical schedule, and reports stay
// byte-identical at any exec:: pool width.
#ifndef CORRAL_CTRL_CHAOS_H_
#define CORRAL_CTRL_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace corral {

// The control-plane fault taxonomy. Kinds marked (predictor) pick a target
// pipeline; the rest act on the epoch as a whole.
enum class ChaosFault : int {
  kPredictorSpike = 0,   // (predictor) forecast multiplied by spike_factor
  kPredictorNonFinite,   // (predictor) forecast becomes NaN / +-Inf
  kPlannerOverrun,       // planning-time budget exceeded this epoch
  kCacheCorrupt,         // cached plan bytes scribbled (checksum mismatch)
  kCacheLoss,            // every cached entry lost (cache store wiped)
  kStaleTopology,        // planner sees the previous epoch's rack view
  kExecFailure,          // epoch execution attempt aborts mid-run
  kCrash,                // whole-process crash after the epoch completes
};
constexpr int kChaosFaultKinds = 8;

std::string_view to_string(ChaosFault fault);
// Parses the spec token names: spike | nan | overrun | corrupt | loss |
// stale | exec | crash. Throws std::invalid_argument on anything else.
ChaosFault parse_chaos_fault(std::string_view text);

// One injected fault instance.
struct ChaosEvent {
  int epoch = 0;
  ChaosFault fault = ChaosFault::kPredictorSpike;
  // Predictor faults: the target pipeline. Stale topology: the rack index
  // spuriously dropped from the planner's view when no real topology edge
  // exists to be stale about. Unused otherwise.
  int target = 0;
  // Spike factor for kPredictorSpike, abort fraction (of the predicted
  // makespan) for kExecFailure.
  double magnitude = 0;
};

// What to inject. Built directly or parsed from a --chaos-spec string: a
// comma-separated list of `kind@epoch` (inject exactly there) and
// `kind=rate` (per-epoch Bernoulli probability, drawn from the chaos seed)
// tokens, e.g. "spike=0.2,nan@3,exec=0.15,crash@5".
struct ChaosSpec {
  std::vector<ChaosEvent> explicit_events;  // kind@epoch entries
  double rates[kChaosFaultKinds] = {0, 0, 0, 0, 0, 0, 0, 0};
  double spike_factor = 25.0;   // predictor spike magnitude
  double abort_fraction = 0.5;  // exec failure: fraction of predicted span

  bool empty() const;
  // Mixed into the control-loop config fingerprint so a checkpoint cannot
  // be resumed under a different chaos regime.
  std::uint64_t fingerprint() const;
  void validate() const;  // rates in [0,1], factors positive, epochs >= 0
};

ChaosSpec parse_chaos_spec(const std::string& text);

// The precomputed fault schedule: ChaosSpec x seed x (epochs, pipelines)
// expanded into a flat event list sorted by (epoch, fault, target). Crash
// events are kept separate — they end the run after their epoch rather
// than perturbing it, so a run that crashes and is resumed sees the same
// per-epoch events as one that never crashed.
class ChaosSchedule {
 public:
  ChaosSchedule() = default;  // empty: no chaos
  ChaosSchedule(const ChaosSpec& spec, int epochs, int pipelines,
                std::uint64_t seed);

  const std::vector<ChaosEvent>& events() const { return events_; }
  // Non-crash events injected into epoch `epoch`, in deterministic order.
  std::vector<ChaosEvent> for_epoch(int epoch) const;
  // True when the process crashes after completing `epoch`.
  bool crash_after(int epoch) const;
  bool empty() const { return events_.empty() && crash_epochs_.empty(); }

 private:
  std::vector<ChaosEvent> events_;  // sorted, crash excluded
  std::vector<int> crash_epochs_;
};

}  // namespace corral

#endif  // CORRAL_CTRL_CHAOS_H_
