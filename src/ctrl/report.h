// Deterministic JSON export of a control-loop run.
//
// One object with a per-epoch series plus run totals — the artifact the
// acceptance gate inspects (per-epoch prediction error, cache hits/misses/
// invalidations, deterministic replan cost, realized-vs-predicted
// completions). Numbers are formatted with obs::format_double and epochs
// are emitted in order, so equal results serialize to equal bytes at any
// exec:: pool width (the CtrlDeterminism suite pins this).
#ifndef CORRAL_CTRL_REPORT_H_
#define CORRAL_CTRL_REPORT_H_

#include <iosfwd>
#include <string>

#include "ctrl/control_loop.h"
#include "ctrl/service.h"

namespace corral {

void write_ctrl_report_json(std::ostream& out,
                            const ControlLoopResult& result);
void write_ctrl_report_json_file(const std::string& path,
                                 const ControlLoopResult& result);
std::string ctrl_report_json_string(const ControlLoopResult& result);

// Multi-tenant service report: per-tenant ctrl report objects (name,
// priority, grant_changes, the tenant's full epoch/totals report), the
// epoch-by-epoch arbitration log and the combined totals. Same determinism
// contract as the single-tenant report: equal results serialize to equal
// bytes at any (shards, threads) combination.
void write_service_report_json(std::ostream& out,
                               const ServiceResult& result);
void write_service_report_json_file(const std::string& path,
                                    const ServiceResult& result);
std::string service_report_json_string(const ServiceResult& result);

}  // namespace corral

#endif  // CORRAL_CTRL_REPORT_H_
