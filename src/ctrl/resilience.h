// Guardrail policy for the control loop (docs/control_plane.md "Failure
// modes and guardrails").
//
// The paper's planning premise only pays off if the control plane survives
// its own faults: a predictor emitting garbage, a planner blowing its
// deadline, a plan store losing or corrupting entries. This module holds
// the knobs (ResilienceConfig) and the error-budget state machine
// (ErrorBudget) that run_control_loop consults every epoch:
//
//  * input validation — forecasts that are non-finite, non-positive or
//    more than outlier_factor away from the last anchored size are
//    quarantined (the planner sees the last-good size instead);
//  * planner time budget — a replan whose provisioning search exceeds
//    planner_budget_evals candidate evaluations (the deterministic replan
//    cost proxy) "misses its deadline" and the loop falls back to the last
//    good plan instead of publishing late;
//  * bounded retry — an epoch execution that aborts is retried up to
//    max_retries times with a doubling virtual-time backoff;
//  * error budget — demote to the reactive baseline (YarnCapacityPolicy,
//    no planning) after demote_after consecutive epochs over the drift
//    threshold, and re-promote after promote_after clean epochs.
//
// Everything is deterministic: the budget consumes per-epoch booleans, not
// wall time, so resumed runs replay the same transitions.
#ifndef CORRAL_CTRL_RESILIENCE_H_
#define CORRAL_CTRL_RESILIENCE_H_

#include <cstddef>
#include <string_view>

#include "cluster/topology.h"

namespace corral {

// Which policy the loop is driving the cluster with.
enum class ControlMode : int {
  kPlanned = 0,   // Corral plans published to the simulator
  kReactive = 1,  // demoted: reactive YarnCapacityPolicy baseline
};

std::string_view to_string(ControlMode mode);

struct ResilienceConfig {
  // Master switch. Off reproduces the pre-guardrail loop: chaos faults land
  // unmitigated (non-finite forecasts, overruns and exec failures abort
  // the epoch; spikes are planned at face value).
  bool enabled = false;

  // Planner deadline, in provisioning-candidate evaluations (the replan
  // cost measure — wall time would break determinism). 0 = unlimited.
  std::size_t planner_budget_evals = 0;

  // Execution retry budget per epoch and the virtual-time backoff before
  // the first retry (doubles each further attempt).
  int max_retries = 2;
  Seconds retry_backoff = 60.0;

  // Forecast quarantine band: a predicted input farther than this factor
  // from the last anchored planning size (in either direction) is rejected.
  // Must exceed 1 + the loop's size_quantum or every ordinary re-anchor
  // would quarantine.
  double outlier_factor = 8.0;

  // Error budget: demote to ControlMode::kReactive after `demote_after`
  // consecutive epochs over the drift threshold (0 disables demotion);
  // re-promote after `promote_after` consecutive clean epochs.
  int demote_after = 0;
  int promote_after = 3;

  // Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

// Consecutive-failure budget driving the kPlanned <-> kReactive transitions.
// Aborted epochs and epochs whose mean prediction error exceeds the drift
// threshold burn budget; clean epochs restore it.
class ErrorBudget {
 public:
  ErrorBudget() = default;
  ErrorBudget(int demote_after, int promote_after);

  // Feeds one epoch's outcome; returns true when the mode changed.
  bool record(bool over_threshold);

  ControlMode mode() const { return mode_; }
  int consecutive_bad() const { return bad_; }
  int consecutive_good() const { return good_; }
  int demotions() const { return demotions_; }
  int promotions() const { return promotions_; }

  // Checkpoint restore: reinstates a recorded machine state verbatim.
  void restore(ControlMode mode, int bad, int good, int demotions,
               int promotions);

 private:
  int demote_after_ = 0;
  int promote_after_ = 3;
  ControlMode mode_ = ControlMode::kPlanned;
  int bad_ = 0;        // consecutive over-threshold epochs while planned
  int good_ = 0;       // consecutive clean epochs while reactive
  int demotions_ = 0;
  int promotions_ = 0;
};

}  // namespace corral

#endif  // CORRAL_CTRL_RESILIENCE_H_
