#include "ctrl/plan_cache.h"

#include <algorithm>
#include <utility>

#include "corral/fingerprint.h"
#include "util/check.h"

namespace corral {

std::uint64_t plan_checksum(const Plan& plan) {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(plan.jobs.size()));
  for (const PlannedJob& job : plan.jobs) {
    f.mix(static_cast<std::uint64_t>(job.job_index));
    f.mix(static_cast<std::uint64_t>(job.num_racks));
    for (int rack : job.racks) f.mix(static_cast<std::uint64_t>(rack));
    f.mix(job.start_time);
    f.mix(job.predicted_latency);
    f.mix(static_cast<std::uint64_t>(job.priority));
  }
  f.mix(plan.predicted_makespan);
  f.mix(plan.predicted_avg_completion);
  f.mix(static_cast<std::uint64_t>(plan.evaluated_candidates));
  return f.value();
}

std::uint64_t PlanCacheKey::combined() const {
  Fingerprint f;
  f.mix(workload);
  f.mix(topology);
  f.mix(planner);
  return f.value();
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "PlanCache: capacity must be >= 1");
}

const Plan* PlanCache::find(const PlanCacheKey& key) {
  const auto it = entries_.find(key.combined());
  if (it == entries_.end() || !(it->second.key == key)) {
    ++stats_.misses;
    return nullptr;
  }
  if (plan_checksum(it->second.plan) != it->second.checksum) {
    // Scribbled entry: drop it rather than serve a wrong schedule.
    entries_.erase(it);
    ++stats_.corruptions;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.plan;
}

void PlanCache::insert(const PlanCacheKey& key, Plan plan) {
  const std::uint64_t combined = key.combined();
  const auto it = entries_.find(combined);
  if (it != entries_.end()) {
    it->second.key = key;
    it->second.checksum = plan_checksum(plan);
    it->second.plan = std::move(plan);
    return;
  }
  if (entries_.size() >= capacity_) {
    // FIFO: evict the oldest surviving insertion.
    while (!insertion_order_.empty()) {
      const std::uint64_t oldest = insertion_order_.front();
      insertion_order_.pop_front();
      if (entries_.erase(oldest) > 0) {
        ++stats_.evictions;
        break;
      }
    }
  }
  const std::uint64_t checksum = plan_checksum(plan);
  entries_.emplace(combined, Entry{key, std::move(plan), checksum});
  insertion_order_.push_back(combined);
}

std::size_t PlanCache::invalidate_topology_changed(
    std::uint64_t current_topology) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.key.topology != current_topology) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

bool PlanCache::invalidate(const PlanCacheKey& key) {
  const auto it = entries_.find(key.combined());
  if (it == entries_.end() || !(it->second.key == key)) return false;
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::size_t PlanCache::invalidate_all() {
  const std::size_t dropped = entries_.size();
  entries_.clear();
  insertion_order_.clear();
  stats_.invalidations += dropped;
  return dropped;
}

bool PlanCache::corrupt_oldest() {
  for (const std::uint64_t id : insertion_order_) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // already evicted/invalidated
    // Scribble the plan bytes while leaving the stored checksum intact;
    // the next find() detects the mismatch.
    it->second.plan.predicted_makespan =
        -(it->second.plan.predicted_makespan + 1.0);
    it->second.plan.evaluated_candidates ^= 0xdeadbeefull;
    return true;
  }
  return false;
}

PlanCache::Snapshot PlanCache::snapshot() const {
  Snapshot out;
  out.stats = stats_;
  out.entries.reserve(entries_.size());
  for (const std::uint64_t id : insertion_order_) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // stale FIFO id (entry dropped)
    out.entries.push_back({it->second.key, it->second.plan});
  }
  return out;
}

void PlanCache::restore(const Snapshot& snapshot) {
  require(snapshot.entries.size() <= capacity_,
          "PlanCache::restore: snapshot larger than capacity");
  entries_.clear();
  insertion_order_.clear();
  for (const Snapshot::Item& item : snapshot.entries) {
    const std::uint64_t combined = item.key.combined();
    entries_.emplace(combined,
                     Entry{item.key, item.plan, plan_checksum(item.plan)});
    insertion_order_.push_back(combined);
  }
  stats_ = snapshot.stats;
}

}  // namespace corral
