#include "ctrl/plan_cache.h"

#include <algorithm>
#include <utility>

#include "corral/fingerprint.h"
#include "util/check.h"

namespace corral {

std::uint64_t PlanCacheKey::combined() const {
  Fingerprint f;
  f.mix(workload);
  f.mix(topology);
  f.mix(planner);
  return f.value();
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "PlanCache: capacity must be >= 1");
}

const Plan* PlanCache::find(const PlanCacheKey& key) {
  const auto it = entries_.find(key.combined());
  if (it == entries_.end() || !(it->second.key == key)) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.plan;
}

void PlanCache::insert(const PlanCacheKey& key, Plan plan) {
  const std::uint64_t combined = key.combined();
  const auto it = entries_.find(combined);
  if (it != entries_.end()) {
    it->second.key = key;
    it->second.plan = std::move(plan);
    return;
  }
  if (entries_.size() >= capacity_) {
    // FIFO: evict the oldest surviving insertion.
    while (!insertion_order_.empty()) {
      const std::uint64_t oldest = insertion_order_.front();
      insertion_order_.pop_front();
      if (entries_.erase(oldest) > 0) {
        ++stats_.evictions;
        break;
      }
    }
  }
  entries_.emplace(combined, Entry{key, std::move(plan)});
  insertion_order_.push_back(combined);
}

std::size_t PlanCache::invalidate_topology_changed(
    std::uint64_t current_topology) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.key.topology != current_topology) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

bool PlanCache::invalidate(const PlanCacheKey& key) {
  const auto it = entries_.find(key.combined());
  if (it == entries_.end() || !(it->second.key == key)) return false;
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::size_t PlanCache::invalidate_all() {
  const std::size_t dropped = entries_.size();
  entries_.clear();
  insertion_order_.clear();
  stats_.invalidations += dropped;
  return dropped;
}

}  // namespace corral
