#include "ctrl/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/export.h"
#include "util/check.h"

namespace corral {
namespace {

std::string hex16(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

const char* json_bool(bool value) { return value ? "true" : "false"; }

// Writes the ctrl report object with no trailing newline; every line after
// the opening "{" is prefixed with `indent`, so the object can be embedded
// at any nesting depth (the service report) while indent == "" reproduces
// the standalone single-tenant bytes exactly.
void write_ctrl_report_object(std::ostream& out,
                              const ControlLoopResult& result,
                              const std::string& indent) {
  using obs::format_double;
  out << "{\n" << indent << "  \"epochs\": [";
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const EpochReport& e = result.epochs[i];
    out << (i > 0 ? "," : "") << "\n" << indent << "    {"
        << "\"epoch\": " << e.epoch << ", \"day\": " << e.day
        << ", \"weekend\": " << json_bool(e.weekend)
        << ", \"cache_key\": \"" << hex16(e.cache_key) << '"'
        << ", \"cache_hit\": " << json_bool(e.cache_hit)
        << ", \"outage\": " << json_bool(e.outage)
        << ", \"drift_replan\": " << json_bool(e.drift_replan)
        << ", \"invalidations\": " << e.invalidations
        << ", \"planning_racks\": " << e.planning_racks
        << ", \"replan_cost_evals\": " << e.replan_cost_evals
        << ", \"rf_hits\": " << e.rf_hits
        << ", \"rf_misses\": " << e.rf_misses
        << ", \"mean_prediction_error\": "
        << format_double(e.mean_prediction_error)
        << ", \"predicted_makespan_s\": "
        << format_double(e.predicted_makespan)
        << ", \"realized_makespan_s\": " << format_double(e.realized_makespan)
        << ", \"makespan_error\": " << format_double(e.makespan_error)
        << ", \"mean_completion_error\": "
        << format_double(e.mean_completion_error)
        << ", \"jobs_failed\": " << e.jobs_failed
        << ", \"mode\": \"" << to_string(e.mode) << '"'
        << ", \"chaos_injected\": " << e.chaos_injected
        << ", \"quarantined\": " << e.quarantined
        << ", \"exec_retries\": " << e.exec_retries
        << ", \"planner_overrun\": " << json_bool(e.planner_overrun)
        << ", \"fallback_plan\": " << json_bool(e.fallback_plan)
        << ", \"stale_topology\": " << json_bool(e.stale_topology)
        << ", \"aborted\": " << json_bool(e.aborted)
        << ", \"demoted\": " << json_bool(e.demoted)
        << ", \"promoted\": " << json_bool(e.promoted) << '}';
  }
  out << (result.epochs.empty() ? "" : "\n" + indent + "  ") << "],\n"
      << indent << "  \"totals\": {"
      << "\"cache_hits\": " << result.cache.hits
      << ", \"cache_misses\": " << result.cache.misses
      << ", \"cache_invalidations\": " << result.cache.invalidations
      << ", \"cache_evictions\": " << result.cache.evictions
      << ", \"cache_corruptions\": " << result.cache.corruptions
      << ", \"rf_hits\": " << result.rf_hits
      << ", \"rf_misses\": " << result.rf_misses
      << ", \"drift_trips\": " << result.drift_trips
      << ", \"mean_prediction_error\": "
      << format_double(result.mean_prediction_error)
      << ", \"hit_rate_after_epoch_2\": "
      << format_double(result.hit_rate_after(2))
      << ", \"epochs_completed\": " << result.epochs_completed
      << ", \"epochs_aborted\": " << result.epochs_aborted
      << ", \"chaos_events\": " << result.chaos_events
      << ", \"quarantined\": " << result.quarantined
      << ", \"exec_retries\": " << result.exec_retries
      << ", \"fallbacks\": " << result.fallbacks
      << ", \"overruns\": " << result.overruns
      << ", \"stale_views\": " << result.stale_views
      << ", \"demotions\": " << result.demotions
      << ", \"promotions\": " << result.promotions
      << ", \"crashed_after\": " << result.crashed_after << "}\n"
      << indent << "}";
}

}  // namespace

void write_ctrl_report_json(std::ostream& out,
                            const ControlLoopResult& result) {
  write_ctrl_report_object(out, result, "");
  out << "\n";
}

void write_ctrl_report_json_file(const std::string& path,
                                 const ControlLoopResult& result) {
  std::ofstream out(path);
  require(out.good(), "write_ctrl_report_json_file: cannot open " + path);
  write_ctrl_report_json(out, result);
  require(out.good(),
          "write_ctrl_report_json_file: write failed for " + path);
}

std::string ctrl_report_json_string(const ControlLoopResult& result) {
  std::ostringstream out;
  write_ctrl_report_json(out, result);
  return out.str();
}

void write_service_report_json(std::ostream& out,
                               const ServiceResult& result) {
  out << "{\n  \"tenants\": [";
  for (std::size_t t = 0; t < result.tenants.size(); ++t) {
    const TenantResult& tenant = result.tenants[t];
    out << (t > 0 ? "," : "") << "\n    {\n"
        << "      \"name\": \"" << tenant.name << "\",\n"
        << "      \"priority\": " << tenant.priority << ",\n"
        << "      \"grant_changes\": " << tenant.grant_changes << ",\n"
        << "      \"report\": ";
    write_ctrl_report_object(out, tenant.loop, "      ");
    out << "\n    }";
  }
  out << (result.tenants.empty() ? "" : "\n  ")
      << "],\n  \"arbitration\": [";
  for (std::size_t i = 0; i < result.arbitration.size(); ++i) {
    const ServiceEpochArbitration& e = result.arbitration[i];
    out << (i > 0 ? "," : "") << "\n    {\"epoch\": " << e.epoch
        << ", \"usable_racks\": " << e.usable_racks
        << ", \"granted_racks\": [";
    for (std::size_t t = 0; t < e.granted_racks.size(); ++t) {
      out << (t > 0 ? ", " : "") << e.granted_racks[t];
    }
    out << "], \"grant_changed\": [";
    for (std::size_t t = 0; t < e.grant_changed.size(); ++t) {
      out << (t > 0 ? ", " : "") << json_bool(e.grant_changed[t]);
    }
    out << "]}";
  }
  out << (result.arbitration.empty() ? "" : "\n  ")
      << "],\n  \"combined\": ";
  write_ctrl_report_object(out, result.combined, "  ");
  out << ",\n  \"crashed_after\": " << result.crashed_after << "\n}\n";
}

void write_service_report_json_file(const std::string& path,
                                    const ServiceResult& result) {
  std::ofstream out(path);
  require(out.good(),
          "write_service_report_json_file: cannot open " + path);
  write_service_report_json(out, result);
  require(out.good(),
          "write_service_report_json_file: write failed for " + path);
}

std::string service_report_json_string(const ServiceResult& result) {
  std::ostringstream out;
  write_service_report_json(out, result);
  return out.str();
}

}  // namespace corral
