// Multi-tenant control-plane service (docs/control_plane.md "Multi-tenant
// service").
//
// T tenants — each a full recurring fleet with its own predictor state,
// sticky planning sizes, PlanCache, ResponseFunctionCache and resilience
// machine (ctrl/tenant.h) — share one cluster and one epoch clock. Each
// epoch the service:
//
//   1. arbitrates — the cross-tenant capacity arbiter (ctrl/arbiter.h)
//      resolves competing rack claims into disjoint per-tenant grants
//      (weighted fair share by priority, sticky to last epoch's grant).
//      Grant changes flow through each tenant's topology fingerprint, so
//      losers spill over onto their residual subcluster via the existing
//      plan-cache invalidation path.
//   2. admits — one work item per tenant enters the shared admission queue
//      in tenant-id order and is dealt round-robin onto S shard lanes;
//      each lane drains its items in admission order on the shared
//      exec::ThreadPool (nested planner/simulator parallelism inlines on
//      the lane's worker).
//   3. merges — per-tenant EpochReports, obs sinks and metrics are merged
//      in (tenant id, epoch, sink seq) order after the parallel region.
//
// Determinism contract: every tenant's work is a pure function of its
// (pipelines, per-tenant seed, granted racks), the arbitration schedule is
// a pure function of the config, and trace sinks live at per-tenant bases
// (tenant t owns sinks [t*(1+2E), (t+1)*(1+2E))), so reports, traces and
// metrics are byte-identical for ANY (shards, threads) combination — and a
// 1-tenant service run is exact-equal to run_control_loop's output.
//
// Checkpoint/resume: ControlLoopConfig::checkpoint_path/resume_path apply
// to the whole service with the v2 multi-tenant checkpoint format
// (ctrl/checkpoint.h): per-tenant sections behind a service-level
// fingerprint gate, one shared trace snapshot.
#ifndef CORRAL_CTRL_SERVICE_H_
#define CORRAL_CTRL_SERVICE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ctrl/control_loop.h"

namespace corral {

// One tenant of the service: a named, weighted recurring fleet.
struct ServiceTenant {
  std::string name;
  int priority = 1;  // fair-share weight for the arbiter, >= 1
  // Planner backend for this tenant's replans (src/plan/backend.h);
  // defaults to the shared config's loop.planner_backend. Mixed into the
  // service checkpoint fingerprint, so a resume with reassigned backends
  // is rejected.
  std::optional<PlannerBackendKind> backend;
  // Network rate-allocation policy for this tenant's epoch simulations
  // (src/coflow); defaults to the shared config's loop.net_policy. Mixed
  // into the service checkpoint fingerprint like `backend`.
  std::optional<NetPolicy> net_policy;
  std::vector<RecurringPipeline> pipelines;
};

struct ServiceConfig {
  // Shared per-tenant knobs (cluster, objective, epochs, thresholds,
  // chaos, resilience, cache capacity, seed, pool, tracer, metrics) plus
  // the service-owned checkpoint_path/resume_path (v2 format) and the
  // global outage schedule. Per-tenant seeds and chaos schedules derive
  // from loop.seed / loop.chaos_seed via tenant_seed().
  ControlLoopConfig loop;

  // Shard lanes the admission queue deals tenants across. Purely an
  // execution-width knob: results are byte-identical at any value.
  int shards = 1;

  // Throws std::invalid_argument when a field is out of range or the
  // cluster cannot give `tenants` tenants one rack each in every epoch.
  void validate(std::size_t tenants) const;
};

// Which racks each tenant held in one epoch (the arbitration log entry).
struct ServiceEpochArbitration {
  int epoch = 0;
  int usable_racks = 0;            // racks not down this epoch
  std::vector<int> granted_racks;  // per tenant: |grant|
  std::vector<bool> grant_changed; // per tenant: grant != previous epoch's
};

struct TenantResult {
  std::string name;
  int priority = 1;
  int grant_changes = 0;  // epochs whose grant differed from the previous
  ControlLoopResult loop;
};

struct ServiceResult {
  std::vector<TenantResult> tenants;  // in tenant-id order
  // The full-run arbitration schedule (a pure function of the config, so
  // it always spans every epoch, crash or not).
  std::vector<ServiceEpochArbitration> arbitration;
  // Concatenated epochs (tenant-id order) + summed totals over all
  // tenants; for T == 1 this equals tenants[0].loop exactly. ctrl.*
  // metrics are recorded from this combined result.
  ControlLoopResult combined;
  // Crash chaos ended the run after this epoch for at least one tenant
  // (-1: ran to completion). Resume continues every tenant from the
  // service checkpoint.
  int crashed_after = -1;
};

// Per-tenant seed derivation: tenant 0 gets the base seed verbatim (the
// single-tenant bit-compatibility anchor), tenant t > 0 an independent
// substream far from the per-epoch and chaos substream indices.
std::uint64_t tenant_seed(std::uint64_t base, int tenant);

// Builds `tenants` independent W1-like recurring fleets named "t0".."tN-1",
// each generated from tenant_seed(seed, t). `priorities` (optional) must be
// empty or size `tenants`; empty means every priority is 1.
std::vector<ServiceTenant> make_service_fleet(
    const W1Config& config, int warmup_days, int epochs, std::uint64_t seed,
    int tenants, std::span<const int> priorities = {});

// Fingerprint gate for the v2 service checkpoint: mixes every tenant's
// control_loop_fingerprint with its name and priority. Shards and pool
// width are excluded — resuming under a different execution width is
// exactly the supported case.
std::uint64_t control_service_fingerprint(
    const ServiceConfig& config, const std::vector<ServiceTenant>& tenants);

// Drives all tenants through `config.loop.epochs` shared epochs. Tenants
// are taken by value: the service owns and mutates their histories.
ServiceResult run_control_service(std::vector<ServiceTenant> tenants,
                                  const ServiceConfig& config);

}  // namespace corral

#endif  // CORRAL_CTRL_SERVICE_H_
