// Cross-tenant capacity arbitration (docs/control_plane.md "Multi-tenant
// service").
//
// Every epoch, T tenants compete for the same usable racks. The arbiter
// resolves the contention with a deterministic weighted fair-share policy:
//
//   1. Quotas. Each tenant's rack quota is its largest-remainder share of
//      the usable racks, weighted by priority — pure integer arithmetic
//      (base = R*w/W, the R - sum(base) leftover racks go to the largest
//      remainders; remainder ties break by higher priority, then lower
//      tenant id). Every tenant is then guaranteed at least one rack
//      (taken from the largest quota), which is why the service requires
//      usable racks >= tenants.
//   2. Grants. In (priority desc, tenant id asc) order each tenant first
//      keeps the racks it *claims* (its previous grant — sticky grants keep
//      topology fingerprints, and with them plan-cache keys, stable across
//      epochs) up to its quota, then fills any shortfall from the lowest-
//      numbered unclaimed racks. Losers whose claims were arbitrated away
//      replan on their residual subcluster through the existing
//      topology-fingerprint invalidation path; no new mechanism needed.
//
// The outcome is a pure function of (usable racks, claims, priorities):
// byte-identical across shard and thread widths, and exactly "grant
// everything" for a single tenant — which is how the single-tenant loop
// stays bit-compatible with its pre-service behavior.
#ifndef CORRAL_CTRL_ARBITER_H_
#define CORRAL_CTRL_ARBITER_H_

#include <span>
#include <vector>

namespace corral {

// One tenant's standing in this epoch's arbitration.
struct TenantClaim {
  int tenant = 0;    // position in the service's tenant list
  int priority = 1;  // fair-share weight, >= 1
  // Racks the tenant held last epoch (sorted ascending). Empty on the
  // first epoch: the tenant takes whatever the fill pass hands it.
  std::vector<int> preferred;
};

struct RackGrants {
  // grants[t] = racks granted to claims[t].tenant, sorted ascending.
  // Every usable rack is granted to exactly one tenant.
  std::vector<std::vector<int>> racks;
  // The fair-share quota each grant was filled to (|racks[t]| == quotas[t]).
  std::vector<int> quotas;
};

// Resolves one epoch's rack contention. `usable` must be sorted ascending
// and unique; requires usable.size() >= claims.size() >= 1 and every
// priority >= 1. Throws std::invalid_argument otherwise.
RackGrants arbitrate_racks(std::span<const int> usable,
                           std::span<const TenantClaim> claims);

}  // namespace corral

#endif  // CORRAL_CTRL_ARBITER_H_
