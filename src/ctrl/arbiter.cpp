#include "ctrl/arbiter.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "util/check.h"

namespace corral {

RackGrants arbitrate_racks(std::span<const int> usable,
                           std::span<const TenantClaim> claims) {
  const std::size_t tenants = claims.size();
  require(tenants >= 1, "arbitrate_racks: need at least one claim");
  require(usable.size() >= tenants,
          "arbitrate_racks: need at least one usable rack per tenant");
  for (std::size_t i = 0; i + 1 < usable.size(); ++i) {
    require(usable[i] < usable[i + 1],
            "arbitrate_racks: usable racks must be sorted and unique");
  }
  std::int64_t total_weight = 0;
  for (const TenantClaim& claim : claims) {
    require(claim.priority >= 1, "arbitrate_racks: priority must be >= 1");
    total_weight += claim.priority;
  }

  // --- 1. largest-remainder fair-share quotas (integer arithmetic) ------
  const std::int64_t racks = static_cast<std::int64_t>(usable.size());
  RackGrants out;
  out.quotas.resize(tenants, 0);
  std::vector<std::int64_t> remainder(tenants, 0);
  std::int64_t assigned = 0;
  for (std::size_t t = 0; t < tenants; ++t) {
    const std::int64_t scaled = racks * claims[t].priority;
    out.quotas[t] = static_cast<int>(scaled / total_weight);
    remainder[t] = scaled % total_weight;
    assigned += out.quotas[t];
  }
  std::vector<std::size_t> order(tenants);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Leftover racks go to the largest remainders; ties to the higher
  // priority, then the lower tenant id — a total, deterministic order.
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (remainder[a] != remainder[b]) {
                return remainder[a] > remainder[b];
              }
              if (claims[a].priority != claims[b].priority) {
                return claims[a].priority > claims[b].priority;
              }
              return claims[a].tenant < claims[b].tenant;
            });
  const std::int64_t leftover = racks - assigned;  // always < tenants
  for (std::int64_t i = 0; i < leftover; ++i) {
    ++out.quotas[order[static_cast<std::size_t>(i)]];
  }
  // Starvation floor: every tenant runs *something* each epoch. A zero
  // quota borrows one rack from the currently largest quota (ties to the
  // lower tenant id); usable >= tenants guarantees a donor with >= 2.
  for (std::size_t t = 0; t < tenants; ++t) {
    if (out.quotas[t] > 0) continue;
    std::size_t donor = 0;
    for (std::size_t d = 1; d < tenants; ++d) {
      if (out.quotas[d] > out.quotas[donor]) donor = d;
    }
    --out.quotas[donor];
    ++out.quotas[t];
  }

  // --- 2. grant pass: sticky claims first, then lowest-numbered fill ----
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (claims[a].priority != claims[b].priority) {
                return claims[a].priority > claims[b].priority;
              }
              return claims[a].tenant < claims[b].tenant;
            });
  out.racks.assign(tenants, {});
  std::vector<char> taken(usable.size(), 0);
  const auto usable_index = [&](int rack) -> std::ptrdiff_t {
    const auto it = std::lower_bound(usable.begin(), usable.end(), rack);
    if (it == usable.end() || *it != rack) return -1;
    return it - usable.begin();
  };
  for (std::size_t t : order) {
    std::vector<int>& grant = out.racks[t];
    grant.reserve(static_cast<std::size_t>(out.quotas[t]));
    for (int rack : claims[t].preferred) {
      if (static_cast<int>(grant.size()) >= out.quotas[t]) break;
      const std::ptrdiff_t index = usable_index(rack);
      if (index < 0 || taken[static_cast<std::size_t>(index)]) continue;
      taken[static_cast<std::size_t>(index)] = 1;
      grant.push_back(rack);
    }
  }
  for (std::size_t t : order) {
    std::vector<int>& grant = out.racks[t];
    for (std::size_t i = 0;
         i < usable.size() &&
         static_cast<int>(grant.size()) < out.quotas[t];
         ++i) {
      if (taken[i]) continue;
      taken[i] = 1;
      grant.push_back(usable[i]);
    }
    std::sort(grant.begin(), grant.end());
  }
  return out;
}

}  // namespace corral
