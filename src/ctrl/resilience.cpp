#include "ctrl/resilience.h"

#include <cmath>

#include "util/check.h"

namespace corral {

std::string_view to_string(ControlMode mode) {
  switch (mode) {
    case ControlMode::kPlanned: return "planned";
    case ControlMode::kReactive: return "reactive";
  }
  return "?";
}

void ResilienceConfig::validate() const {
  require(max_retries >= 0, "ResilienceConfig: max_retries must be >= 0");
  require(std::isfinite(retry_backoff) && retry_backoff > 0,
          "ResilienceConfig: retry_backoff must be positive");
  require(std::isfinite(outlier_factor) && outlier_factor > 1,
          "ResilienceConfig: outlier_factor must be > 1");
  require(demote_after >= 0, "ResilienceConfig: demote_after must be >= 0");
  require(promote_after >= 1,
          "ResilienceConfig: promote_after must be >= 1");
}

ErrorBudget::ErrorBudget(int demote_after, int promote_after)
    : demote_after_(demote_after), promote_after_(promote_after) {
  require(demote_after >= 0, "ErrorBudget: demote_after must be >= 0");
  require(promote_after >= 1, "ErrorBudget: promote_after must be >= 1");
}

bool ErrorBudget::record(bool over_threshold) {
  if (mode_ == ControlMode::kPlanned) {
    if (over_threshold) {
      ++bad_;
      if (demote_after_ > 0 && bad_ >= demote_after_) {
        mode_ = ControlMode::kReactive;
        bad_ = 0;
        good_ = 0;
        ++demotions_;
        return true;
      }
    } else {
      bad_ = 0;
    }
    return false;
  }
  // Reactive: count clean epochs toward re-promotion.
  if (over_threshold) {
    good_ = 0;
    return false;
  }
  ++good_;
  if (good_ >= promote_after_) {
    mode_ = ControlMode::kPlanned;
    bad_ = 0;
    good_ = 0;
    ++promotions_;
    return true;
  }
  return false;
}

void ErrorBudget::restore(ControlMode mode, int bad, int good, int demotions,
                          int promotions) {
  require(bad >= 0 && good >= 0 && demotions >= 0 && promotions >= 0,
          "ErrorBudget::restore: negative counter");
  mode_ = mode;
  bad_ = bad;
  good_ = good;
  demotions_ = demotions;
  promotions_ = promotions;
}

}  // namespace corral
