// Closed-loop control plane: predict -> plan-cache -> execute -> measure ->
// replan (docs/control_plane.md).
//
// The paper's whole premise (§2, Fig 3) is a *recurring* workflow: predict
// the next instance of each recurring job from history, plan offline,
// execute the plan on the cluster, and feed measurements back into the
// history. This module drives N virtual "days" (epochs) of that loop over
// the simulator:
//
//   1. predict  — the §2 averaging predictor forecasts tonight's input size
//                 for every recurring job from its (weekday/weekend-split)
//                 history, and estimate_job_spec scales the reference run.
//                 Each pipeline keeps a *sticky planning size* per day kind
//                 that re-anchors to the forecast only when the two diverge
//                 by more than size_quantum — the loop replans when the
//                 forecast materially moves, not on every ±1% wiggle (the
//                 quantization dead-band that makes cache keys repeat).
//   2. plan     — a signature-keyed PlanCache is consulted with the key of
//                 the sticky planning specs; a hit reuses the cached
//                 {R_j, T_j, p_j} outright, a miss runs the full §4.2
//                 provisioning search (with per-job L_j(r) envelopes
//                 memoized across epochs by ResponseFunctionCache) and
//                 caches the result.
//   3. execute  — the plan is published to the simulator via CorralPolicy
//                 and the epoch's *realized* instances (predictions are
//                 never exact) run to completion.
//   4. measure  — per-epoch prediction error, realized-vs-predicted
//                 makespan and completion times, cache hits/misses/
//                 invalidations and the deterministic replan cost are
//                 recorded (obs counters + spans on the kCtrl track).
//   5. replan   — realized input sizes are appended to the histories; a
//                 drift detector invalidates the cached plan when the
//                 epoch's mean prediction error exceeds a threshold (§5
//                 fallback: stop trusting a plan the world has outgrown),
//                 and topology changes (rack outages) invalidate every
//                 plan built against a different topology.
//
// Everything is virtual-time and seed-driven: the loop's outputs (reports,
// traces, metrics) are byte-identical at any exec:: pool width.
#ifndef CORRAL_CTRL_CONTROL_LOOP_H_
#define CORRAL_CTRL_CONTROL_LOOP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corral/latency_model.h"
#include "corral/planner.h"
#include "ctrl/chaos.h"
#include "ctrl/plan_cache.h"
#include "ctrl/resilience.h"
#include "sim/simulator.h"
#include "workload/recurring.h"
#include "workload/workloads.h"

namespace corral {

namespace exec {
class ThreadPool;
}  // namespace exec

// One recurring pipeline under control: a reference run (task structure,
// rates, selectivities), the seasonal shape its input follows, the realized
// input timeline (exogenous ground truth, one entry per day), and the
// history the predictor is allowed to see — initially the warmup prefix,
// grown by the loop's feedback step one observed instance per epoch.
struct RecurringPipeline {
  JobSpec reference;
  RecurringJobTemplate shape;
  std::vector<JobInstance> timeline;  // day 0 .. warmup+epochs-1
  std::vector<JobInstance> history;   // what the predictor may read
};

// One injected whole-rack outage: rack `rack` is down for the duration of
// epoch `epoch`.
struct RackOutage {
  int epoch = 0;
  int rack = 0;

  bool operator==(const RackOutage& other) const = default;
};

struct ControlLoopConfig {
  ClusterConfig cluster;
  Objective objective = Objective::kMakespan;

  // Planning algorithm for every replan (src/plan/backend.h). Folded into
  // the plan-cache planner fingerprint, so runs keyed under one backend
  // never reuse plans produced by another; also mixed into the checkpoint
  // config fingerprint, so a resume with a different backend is rejected.
  // The multi-tenant service can override it per tenant (ServiceTenant).
  PlannerBackendKind planner_backend = PlannerBackendKind::kCorral;

  // Network rate-allocation policy each epoch's simulation runs under
  // (src/coflow, docs/coflow.md). Mixed into the per-tenant planner
  // signature and the checkpoint config fingerprint exactly like
  // planner_backend, so runs keyed under one policy never resume or reuse
  // state from another. The multi-tenant service can override it per tenant
  // (ServiceTenant::net_policy).
  NetPolicy net_policy = NetPolicy::kTcp;

  // Virtual days to drive. Day d of the loop is calendar day
  // warmup_days + d, so weekday/weekend seasonality advances epoch by epoch.
  int epochs = 10;
  // Days of history each pipeline starts with (the predictor's §2 warmup).
  int warmup_days = 14;

  // Drift detector (§5 fallback): when an epoch's mean relative prediction
  // error exceeds this, the cached plan for the *next* epoch's key is
  // invalidated and the loop replans. Must be positive.
  double drift_threshold = 0.25;

  // Relative tolerance of the planning dead-band (and of the plan-cache /
  // response-function-memo signatures): a pipeline's sticky planning size
  // re-anchors to the forecast only when they diverge by more than this, so
  // predictions within the tolerance reuse the cached plan. Must be
  // positive.
  double size_quantum = 0.15;

  // Rolling history window fed to prune_history after each feedback step;
  // 0 keeps unbounded history.
  int history_window_days = 0;

  // Injected whole-rack outages: during epoch `epoch` rack `rack` is down
  // (its machines failed in the simulator, the rack excluded from the
  // planning universe, and every cached plan built against a different
  // topology invalidated). Multiple entries may share an epoch (several
  // racks down at once) or a rack (the same rack flapping across epochs);
  // exact duplicates are rejected by validate().
  std::vector<RackOutage> outages;

  // Control-plane chaos (ctrl/chaos.h): faults injected into the loop
  // itself. Empty = no chaos. chaos_seed 0 derives the schedule seed from
  // `seed`, so chaos runs stay reproducible from one flag.
  ChaosSpec chaos;
  std::uint64_t chaos_seed = 0;

  // Guardrail policy (ctrl/resilience.h). Disabled by default: the loop
  // behaves exactly as before this module existed, and chaos faults land
  // unmitigated.
  ResilienceConfig resilience;

  // When non-empty, a versioned, checksummed checkpoint (ctrl/checkpoint.h)
  // is (re)written after every completed epoch, and — crash chaos or not —
  // a later run can continue from it.
  std::string checkpoint_path;
  // When non-empty, the loop restores this checkpoint before its first
  // epoch and continues from the epoch after the checkpoint's. The config
  // and fleet must fingerprint-match the checkpointing run; throws
  // std::invalid_argument otherwise.
  std::string resume_path;

  // Max cached plans (FIFO eviction past it).
  std::size_t cache_capacity = 64;

  // Base seed; each epoch's simulation derives its own seed from it.
  std::uint64_t seed = 2015;

  // Pool for planning and simulation (nullptr = exec::ThreadPool::shared());
  // results are byte-identical at any width.
  exec::ThreadPool* pool = nullptr;

  // Observability (both optional). Sink layout, fixed so merged traces are
  // deterministic: sink 0 = the control loop (kCtrl track, timestamped by
  // epoch index), sink 1+2e = epoch e's planner, sink 2+2e = epoch e's
  // simulation.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  // Throws std::invalid_argument when a field is out of range (non-positive
  // epochs/warmup/drift_threshold/size_quantum, bad outage rack, ...).
  void validate() const;
};

// What one turn of the loop did and saw.
struct EpochReport {
  int epoch = 0;
  int day = 0;           // calendar day (warmup_days + epoch)
  bool weekend = false;

  // Plan-cache outcome for this epoch's key.
  std::uint64_t cache_key = 0;
  bool cache_hit = false;
  bool outage = false;        // the injected rack outage epoch
  bool drift_replan = false;  // miss forced by the drift detector
  std::uint64_t invalidations = 0;  // entries dropped entering this epoch
  int planning_racks = 0;           // usable racks the planner saw
  // Pipelines whose sticky planning size re-anchored this epoch (forecast
  // moved more than size_quantum from what the current plan assumed).
  int planning_updates = 0;

  // Replan cost in provisioning-candidate evaluations (deterministic; 0 on
  // a cache hit — that is the point of the cache).
  std::size_t replan_cost_evals = 0;
  // Memoized-envelope hits/misses while (re)building response functions.
  std::uint64_t rf_hits = 0;
  std::uint64_t rf_misses = 0;

  // Prediction quality: mean over pipelines of |predicted - realized| /
  // realized input.
  double mean_prediction_error = 0;

  // Plan quality: predicted vs realized.
  Seconds predicted_makespan = 0;
  Seconds realized_makespan = 0;
  double makespan_error = 0;  // |realized - predicted| / predicted
  // Mean over jobs of |realized completion - predicted completion| /
  // predicted completion (successful jobs only).
  double mean_completion_error = 0;

  int jobs_failed = 0;

  // --- resilience (ctrl/resilience.h, ctrl/chaos.h) ---------------------
  ControlMode mode = ControlMode::kPlanned;  // policy driving this epoch
  int chaos_injected = 0;   // non-crash chaos events landed this epoch
  int quarantined = 0;      // forecasts rejected by input validation
  int exec_retries = 0;     // execution attempts beyond the first
  bool planner_overrun = false;  // replan exceeded its deadline budget
  bool fallback_plan = false;    // last-good plan substituted for a replan
  bool stale_topology = false;   // stale planner view injected this epoch
  // The epoch gave up: no plan could be published or every execution
  // attempt aborted. Nothing ran, nothing was measured or fed back.
  bool aborted = false;
  bool demoted = false;   // error budget demoted the loop after this epoch
  bool promoted = false;  // error budget re-promoted after this epoch
};

struct ControlLoopResult {
  std::vector<EpochReport> epochs;
  PlanCacheStats cache;       // totals over the run
  std::uint64_t rf_hits = 0;  // response-function memo totals
  std::uint64_t rf_misses = 0;
  int drift_trips = 0;        // epochs whose error exceeded the threshold
  double mean_prediction_error = 0;  // over completed (non-aborted) epochs

  // Resilience totals over the run.
  int epochs_completed = 0;  // epochs that executed and fed back
  int epochs_aborted = 0;    // epochs that gave up (resilience off)
  int chaos_events = 0;      // non-crash chaos events injected
  int quarantined = 0;
  int exec_retries = 0;
  int fallbacks = 0;   // epochs served by the last-good plan
  int overruns = 0;    // planner deadline overruns observed
  int stale_views = 0; // stale-topology injections observed
  int demotions = 0;   // error-budget planned -> reactive transitions
  int promotions = 0;  // error-budget reactive -> planned transitions
  // Crash chaos ended the run after this epoch (-1: ran to completion).
  // A later run resumes from the checkpoint; result.epochs then spans the
  // whole run and crashed_after is -1 again.
  int crashed_after = -1;

  // Cache hit rate over non-aborted epochs with index > `after_epoch` (the
  // acceptance gate: >= 0.5 after epoch 2 on a stable topology). Aborted
  // epochs published nothing and stay out of the denominator; when every
  // counted epoch aborted this is 0, never NaN.
  double hit_rate_after(int after_epoch) const;
};

// Builds a W1-like recurring fleet: one pipeline per make_w1 job, each with
// its own seasonal shape (weekend factor, drift, noise) and a realized
// timeline covering warmup_days + epochs days. Deterministic in `seed`.
std::vector<RecurringPipeline> make_recurring_fleet(
    const W1Config& config, int warmup_days, int epochs, std::uint64_t seed);

// Drives the loop. Pipelines are taken by value: the loop owns and mutates
// their histories (the feedback edge). Internally a thin wrapper over one
// TenantLoop (ctrl/tenant.h) of the multi-tenant service (ctrl/service.h);
// outputs are bit-compatible with the pre-service implementation.
ControlLoopResult run_control_loop(std::vector<RecurringPipeline> pipelines,
                                   const ControlLoopConfig& config);

// Writes the run's ctrl.* counters and gauges into `metrics` (no-op when
// null). Shared by run_control_loop and the multi-tenant service, which
// records the same names over its combined result.
void record_ctrl_metrics(obs::MetricsRegistry* metrics,
                         const ControlLoopResult& result);

}  // namespace corral

#endif  // CORRAL_CTRL_CONTROL_LOOP_H_
