#include "ctrl/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <tuple>

#include "corral/fingerprint.h"
#include "util/check.h"
#include "util/rng.h"

namespace corral {
namespace {

constexpr std::string_view kFaultNames[kChaosFaultKinds] = {
    "spike", "nan", "overrun", "corrupt", "loss", "stale", "exec", "crash"};

// Stream separation matching the control loop's seed derivation: one
// independent stream per (epoch, fault kind).
std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

bool parse_number(const std::string& text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

std::string_view to_string(ChaosFault fault) {
  const int index = static_cast<int>(fault);
  ensure(index >= 0 && index < kChaosFaultKinds, "to_string: bad ChaosFault");
  return kFaultNames[index];
}

ChaosFault parse_chaos_fault(std::string_view text) {
  for (int i = 0; i < kChaosFaultKinds; ++i) {
    if (text == kFaultNames[i]) return static_cast<ChaosFault>(i);
  }
  require(false, "unknown chaos fault '" + std::string(text) +
                     "' (expected spike | nan | overrun | corrupt | loss | "
                     "stale | exec | crash)");
  return ChaosFault::kPredictorSpike;  // unreachable
}

bool ChaosSpec::empty() const {
  if (!explicit_events.empty()) return false;
  for (double rate : rates) {
    if (rate > 0) return false;
  }
  return true;
}

std::uint64_t ChaosSpec::fingerprint() const {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(explicit_events.size()));
  for (const ChaosEvent& event : explicit_events) {
    f.mix(static_cast<std::uint64_t>(event.epoch));
    f.mix(static_cast<std::uint64_t>(static_cast<int>(event.fault)));
  }
  for (double rate : rates) f.mix(rate);
  f.mix(spike_factor);
  f.mix(abort_fraction);
  return f.value();
}

void ChaosSpec::validate() const {
  for (int i = 0; i < kChaosFaultKinds; ++i) {
    require(std::isfinite(rates[i]) && rates[i] >= 0 && rates[i] <= 1,
            "ChaosSpec: rate for '" + std::string(kFaultNames[i]) +
                "' must be in [0, 1]");
  }
  require(std::isfinite(spike_factor) && spike_factor > 1,
          "ChaosSpec: spike_factor must be > 1");
  require(std::isfinite(abort_fraction) && abort_fraction > 0 &&
              abort_fraction <= 1,
          "ChaosSpec: abort_fraction must be in (0, 1]");
  for (const ChaosEvent& event : explicit_events) {
    require(event.epoch >= 0, "ChaosSpec: event epoch must be >= 0");
  }
}

ChaosSpec parse_chaos_spec(const std::string& text) {
  ChaosSpec spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    const std::size_t eq = token.find('=');
    if (at != std::string::npos) {
      const ChaosFault fault = parse_chaos_fault(token.substr(0, at));
      double epoch = 0;
      require(parse_number(token.substr(at + 1), &epoch) && epoch >= 0 &&
                  epoch == std::floor(epoch),
              "chaos spec: bad epoch in '" + token + "'");
      ChaosEvent event;
      event.epoch = static_cast<int>(epoch);
      event.fault = fault;
      spec.explicit_events.push_back(event);
    } else if (eq != std::string::npos) {
      const ChaosFault fault = parse_chaos_fault(token.substr(0, eq));
      double rate = 0;
      require(parse_number(token.substr(eq + 1), &rate),
              "chaos spec: bad rate in '" + token + "'");
      spec.rates[static_cast<int>(fault)] = rate;
    } else {
      require(false, "chaos spec: token '" + token +
                         "' is neither kind@epoch nor kind=rate");
    }
  }
  spec.validate();
  return spec;
}

ChaosSchedule::ChaosSchedule(const ChaosSpec& spec, int epochs, int pipelines,
                             std::uint64_t seed) {
  spec.validate();
  require(epochs > 0, "ChaosSchedule: epochs must be positive");
  require(pipelines > 0, "ChaosSchedule: pipelines must be positive");

  auto materialize = [&](int epoch, ChaosFault fault) {
    if (fault == ChaosFault::kCrash) {
      crash_epochs_.push_back(epoch);
      return;
    }
    // Target/magnitude derive from their own stream so adding one fault
    // kind never perturbs another kind's draws.
    Rng rng(substream(seed, static_cast<std::uint64_t>(
                                epoch * kChaosFaultKinds +
                                static_cast<int>(fault)) *
                                2 +
                                1));
    ChaosEvent event;
    event.epoch = epoch;
    event.fault = fault;
    event.target = rng.uniform_int(0, pipelines - 1);
    switch (fault) {
      case ChaosFault::kPredictorSpike:
        event.magnitude = spec.spike_factor;
        break;
      case ChaosFault::kExecFailure:
        event.magnitude = spec.abort_fraction;
        break;
      default:
        event.magnitude = 0;
        break;
    }
    events_.push_back(event);
  };

  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int kind = 0; kind < kChaosFaultKinds; ++kind) {
      const double rate = spec.rates[kind];
      if (rate <= 0) continue;
      Rng rng(substream(seed, static_cast<std::uint64_t>(
                                  epoch * kChaosFaultKinds + kind) *
                                  2));
      if (rng.chance(rate)) {
        materialize(epoch, static_cast<ChaosFault>(kind));
      }
    }
  }
  for (const ChaosEvent& event : spec.explicit_events) {
    if (event.epoch >= epochs) continue;  // spec reused across run lengths
    materialize(event.epoch, event.fault);
  }

  std::sort(events_.begin(), events_.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              return std::tie(a.epoch, a.fault, a.target) <
                     std::tie(b.epoch, b.fault, b.target);
            });
  std::sort(crash_epochs_.begin(), crash_epochs_.end());
}

std::vector<ChaosEvent> ChaosSchedule::for_epoch(int epoch) const {
  std::vector<ChaosEvent> out;
  for (const ChaosEvent& event : events_) {
    if (event.epoch == epoch) out.push_back(event);
  }
  return out;
}

bool ChaosSchedule::crash_after(int epoch) const {
  return std::binary_search(crash_epochs_.begin(), crash_epochs_.end(),
                            epoch);
}

}  // namespace corral
