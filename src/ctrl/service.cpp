#include "ctrl/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "corral/fingerprint.h"
#include "ctrl/arbiter.h"
#include "ctrl/checkpoint.h"
#include "ctrl/tenant.h"
#include "exec/exec.h"
#include "obs/trace.h"
#include "sim/batch.h"
#include "util/check.h"

namespace corral {
namespace {

// Per-tenant chaos-schedule seed: an explicit chaos_seed fans out per
// tenant the same way the base seed does (tenant 0 keeps it verbatim); 0
// lets each TenantLoop derive its own from its tenant seed.
std::uint64_t tenant_chaos_seed(const ControlLoopConfig& loop, int tenant) {
  return loop.chaos_seed == 0 ? 0 : tenant_seed(loop.chaos_seed, tenant);
}

// The arbitration schedule is a pure function of (outages, priorities,
// epochs): claims are sticky (each epoch's preferred set is the previous
// epoch's grant), so the whole run's grants can be — and are — computed up
// front, identically on a fresh run and on a resume.
struct ArbitrationSchedule {
  std::vector<std::vector<std::vector<int>>> grants;  // [epoch][tenant]
  std::vector<ServiceEpochArbitration> log;
};

ArbitrationSchedule plan_arbitration(const ServiceConfig& config,
                                     const std::vector<ServiceTenant>& tenants) {
  const std::size_t count = tenants.size();
  const int epochs = config.loop.epochs;
  ArbitrationSchedule schedule;
  schedule.grants.resize(static_cast<std::size_t>(epochs));
  schedule.log.reserve(static_cast<std::size_t>(epochs));
  std::vector<std::vector<int>> prev(count);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const std::vector<int> down =
        ctrl_detail::outage_racks_for_epoch(config.loop, epoch);
    std::vector<int> usable;
    usable.reserve(static_cast<std::size_t>(config.loop.cluster.racks));
    for (int r = 0; r < config.loop.cluster.racks; ++r) {
      if (!std::binary_search(down.begin(), down.end(), r)) {
        usable.push_back(r);
      }
    }
    std::vector<TenantClaim> claims(count);
    for (std::size_t t = 0; t < count; ++t) {
      claims[t].tenant = static_cast<int>(t);
      claims[t].priority = tenants[t].priority;
      claims[t].preferred = prev[t];
    }
    RackGrants grants = arbitrate_racks(usable, claims);
    ServiceEpochArbitration entry;
    entry.epoch = epoch;
    entry.usable_racks = static_cast<int>(usable.size());
    entry.granted_racks.reserve(count);
    entry.grant_changed.reserve(count);
    for (std::size_t t = 0; t < count; ++t) {
      entry.granted_racks.push_back(
          static_cast<int>(grants.racks[t].size()));
      entry.grant_changed.push_back(epoch > 0 &&
                                    grants.racks[t] != prev[t]);
    }
    schedule.log.push_back(std::move(entry));
    prev = grants.racks;
    schedule.grants[static_cast<std::size_t>(epoch)] =
        std::move(grants.racks);
  }
  return schedule;
}

}  // namespace

void ServiceConfig::validate(std::size_t tenants) const {
  loop.validate();
  require(shards >= 1, "ServiceConfig: shards must be >= 1");
  require(tenants >= 1, "ServiceConfig: need at least one tenant");
  for (int epoch = 0; epoch < loop.epochs; ++epoch) {
    int down = 0;
    for (const RackOutage& outage : loop.outages) {
      if (outage.epoch == epoch) ++down;
    }
    require(static_cast<std::size_t>(loop.cluster.racks - down) >= tenants,
            "ServiceConfig: epoch " + std::to_string(epoch) +
                " leaves fewer usable racks than tenants");
  }
}

std::uint64_t tenant_seed(std::uint64_t base, int tenant) {
  if (tenant == 0) return base;
  // Index offset keeps tenant substreams far from the per-epoch (small
  // indices) and chaos (0xC4A05) substreams of the same base seed.
  return ctrl_detail::substream(
      base, 0x7E4A0000ull + static_cast<std::uint64_t>(tenant));
}

std::vector<ServiceTenant> make_service_fleet(
    const W1Config& config, int warmup_days, int epochs, std::uint64_t seed,
    int tenants, std::span<const int> priorities) {
  require(tenants >= 1, "make_service_fleet: tenants must be >= 1");
  require(priorities.empty() ||
              priorities.size() == static_cast<std::size_t>(tenants),
          "make_service_fleet: priorities must be empty or one per tenant");
  std::vector<ServiceTenant> fleet;
  fleet.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    ServiceTenant tenant;
    tenant.name = "t" + std::to_string(t);
    tenant.priority =
        priorities.empty() ? 1 : priorities[static_cast<std::size_t>(t)];
    tenant.pipelines = make_recurring_fleet(config, warmup_days, epochs,
                                            tenant_seed(seed, t));
    fleet.push_back(std::move(tenant));
  }
  return fleet;
}

std::uint64_t control_service_fingerprint(
    const ServiceConfig& config, const std::vector<ServiceTenant>& tenants) {
  Fingerprint f;
  f.mix("corral-service");
  f.mix(static_cast<std::uint64_t>(tenants.size()));
  for (const ServiceTenant& tenant : tenants) {
    f.mix(tenant.name);
    f.mix(static_cast<std::uint64_t>(tenant.priority));
    // The backend the tenant actually plans with: a resume that reassigns
    // per-tenant backends must be rejected like any other config change.
    f.mix(static_cast<std::uint64_t>(
        tenant.backend.value_or(config.loop.planner_backend)));
    // Same rule for the net policy the tenant's simulations run under.
    f.mix(static_cast<std::uint64_t>(
        tenant.net_policy.value_or(config.loop.net_policy)));
    f.mix(control_loop_fingerprint(config.loop, tenant.pipelines));
  }
  return f.value();
}

ServiceResult run_control_service(std::vector<ServiceTenant> tenants,
                                  const ServiceConfig& config) {
  config.validate(tenants.size());
  for (const ServiceTenant& tenant : tenants) {
    require(tenant.priority >= 1,
            "run_control_service: tenant priority must be >= 1");
    ctrl_detail::validate_pipelines(
        tenant.pipelines, "run_control_service('" + tenant.name + "')");
  }
  const std::size_t count = tenants.size();
  const int epochs = config.loop.epochs;
  // Each tenant owns a fixed block of trace sinks: ctrl at the base,
  // planner at base+1+2e, simulation at base+2+2e — the single-tenant
  // layout, shifted. The service itself traces on the sink after every
  // tenant block (T > 1 only, so a 1-tenant service is bit-compatible
  // with run_control_loop).
  const int sink_stride = 1 + 2 * epochs;
  const std::uint64_t service_sig =
      control_service_fingerprint(config, tenants);
  const ArbitrationSchedule schedule = plan_arbitration(config, tenants);

  std::vector<TenantLoop> loops;
  loops.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    loops.emplace_back(
        std::move(tenants[t].pipelines), config.loop,
        tenant_seed(config.loop.seed, static_cast<int>(t)),
        tenant_chaos_seed(config.loop, static_cast<int>(t)),
        /*sink_base=*/static_cast<int>(t) * sink_stride,
        /*label_prefix=*/
        count == 1 ? std::string()
                   : "t" + std::to_string(t) + "/",
        tenants[t].backend, tenants[t].net_policy);
  }

  int start_epoch = 0;
  if (!config.loop.resume_path.empty()) {
    ServiceCheckpointState saved =
        read_service_checkpoint(config.loop.resume_path);
    require(saved.config_fingerprint == service_sig,
            "run_control_service: checkpoint '" + config.loop.resume_path +
                "' was written by a different config or tenant set");
    require(saved.tenants.size() == count,
            "run_control_service: checkpoint tenant count mismatch");
    require(saved.next_epoch >= 0 && saved.next_epoch <= epochs,
            "run_control_service: checkpoint next_epoch out of range");
    start_epoch = saved.next_epoch;
    for (std::size_t t = 0; t < count; ++t) {
      loops[t].restore_state(saved.tenants[t]);
    }
    if (config.loop.tracer != nullptr) {
      obs::restore_tracer(*config.loop.tracer, saved.trace);
    }
  }

  // Bound *after* a possible restore replays old sinks into the tracer.
  for (TenantLoop& loop : loops) loop.bind_trace();
  obs::TraceRecorder service_trace;
  if (count > 1) {
    service_trace = obs::TraceRecorder(
        config.loop.tracer, static_cast<int>(count) * sink_stride,
        "service");
  }

  const BatchRunner runner(config.loop.pool);
  exec::ThreadPool& pool = config.loop.pool != nullptr
                               ? *config.loop.pool
                               : exec::ThreadPool::shared();
  const std::size_t lanes =
      std::min<std::size_t>(static_cast<std::size_t>(config.shards), count);

  ServiceResult result;
  for (int epoch = start_epoch; epoch < epochs; ++epoch) {
    const bool outage =
        !ctrl_detail::outage_racks_for_epoch(config.loop, epoch).empty();
    const ServiceEpochArbitration& entry =
        schedule.log[static_cast<std::size_t>(epoch)];
    if (count > 1) {
      int changed = 0;
      for (const bool c : entry.grant_changed) changed += c ? 1 : 0;
      service_trace.instant(
          obs::TraceTrack::kCtrl, "arbitrate", "service", /*tid=*/0,
          /*ts=*/epoch,
          {obs::arg("usable_racks",
                    static_cast<double>(entry.usable_racks)),
           obs::arg("grants_changed", static_cast<double>(changed))});
    }
    // The shared admission queue: one item per tenant, admitted in
    // tenant-id order, dealt round-robin onto the shard lanes. Tenant
    // state is disjoint and every tenant's sinks and seeds are its own,
    // so the lanes run concurrently without ordering effects; nested
    // planner/simulator regions inline on the lane's worker.
    const std::vector<std::vector<int>>& grants =
        schedule.grants[static_cast<std::size_t>(epoch)];
    exec::parallel_for(pool, lanes, [&](std::size_t lane) {
      for (std::size_t t = lane; t < count; t += lanes) {
        loops[t].run_epoch(epoch, grants[t], outage, runner);
      }
    });

    if (!config.loop.checkpoint_path.empty()) {
      ServiceCheckpointState state;
      state.config_fingerprint = service_sig;
      state.next_epoch = epoch + 1;
      state.tenants.resize(count);
      for (std::size_t t = 0; t < count; ++t) {
        loops[t].save_state(state.tenants[t]);
      }
      if (config.loop.tracer != nullptr) {
        state.trace = obs::snapshot_tracer(*config.loop.tracer);
      }
      write_service_checkpoint(config.loop.checkpoint_path, state);
    }
    bool crashed = false;
    for (std::size_t t = 0; t < count; ++t) {
      if (loops[t].crash_after(epoch)) {
        loops[t].note_crash(epoch);
        crashed = true;
      }
    }
    if (crashed) {
      // Whole-process crash: one tenant's crash chaos takes the shared
      // service down for everyone. Resume continues every tenant from the
      // checkpoint just written.
      result.crashed_after = epoch;
      break;
    }
  }

  result.arbitration = schedule.log;
  result.tenants.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    TenantResult tenant;
    tenant.name = tenants[t].name;
    tenant.priority = tenants[t].priority;
    for (const ServiceEpochArbitration& entry : schedule.log) {
      if (entry.grant_changed[t]) ++tenant.grant_changes;
    }
    tenant.loop = loops[t].finish();
    result.tenants.push_back(std::move(tenant));
  }

  // Merge: epochs concatenate in tenant-id order, totals sum, and the
  // run-level mean recomputes over the concatenation — for one tenant the
  // combined result IS the tenant result, so metrics bytes match
  // run_control_loop's.
  ControlLoopResult& combined = result.combined;
  double error_sum = 0;
  for (const TenantResult& tenant : result.tenants) {
    const ControlLoopResult& r = tenant.loop;
    combined.epochs.insert(combined.epochs.end(), r.epochs.begin(),
                           r.epochs.end());
    combined.cache.hits += r.cache.hits;
    combined.cache.misses += r.cache.misses;
    combined.cache.invalidations += r.cache.invalidations;
    combined.cache.evictions += r.cache.evictions;
    combined.cache.corruptions += r.cache.corruptions;
    combined.rf_hits += r.rf_hits;
    combined.rf_misses += r.rf_misses;
    combined.drift_trips += r.drift_trips;
    combined.epochs_completed += r.epochs_completed;
    combined.epochs_aborted += r.epochs_aborted;
    combined.chaos_events += r.chaos_events;
    combined.quarantined += r.quarantined;
    combined.exec_retries += r.exec_retries;
    combined.fallbacks += r.fallbacks;
    combined.overruns += r.overruns;
    combined.stale_views += r.stale_views;
    combined.demotions += r.demotions;
    combined.promotions += r.promotions;
  }
  for (const EpochReport& report : combined.epochs) {
    if (!report.aborted) error_sum += report.mean_prediction_error;
  }
  combined.mean_prediction_error =
      combined.epochs_completed > 0
          ? error_sum / static_cast<double>(combined.epochs_completed)
          : 0.0;
  combined.crashed_after = result.crashed_after;

  record_ctrl_metrics(config.loop.metrics, combined);
  return result;
}

}  // namespace corral
