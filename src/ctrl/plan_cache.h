// Signature-keyed plan cache (docs/control_plane.md).
//
// The paper's deployment story (§2, §3.1) is that recurring jobs are
// predictable, so offline plans can be computed once and *reused* across
// instances. The cache keys a plan by the triple the planner consumed:
//
//   (workload signature, topology fingerprint, planner-config fingerprint)
//
// all computed by corral/fingerprint.h. Workload signatures quantize data
// sizes and task counts into relative log buckets, so tonight's predicted
// instance of a recurring workload — within the ~6.5% prediction wiggle of
// Fig 1 — maps to the key of yesterday's and hits; a genuinely different
// workload, a changed objective, or a degraded topology misses.
//
// Invalidation: when the planning topology changes (a rack outage crosses
// the health threshold, or the cluster is reconfigured), entries planned
// against any *other* topology are dropped — their rack sets may reference
// racks that no longer exist. The drift detector additionally invalidates a
// single entry when realized behaviour diverges from the plan's prediction
// (paper §5 fallback: stop trusting the plan, replan).
//
// The cache is deterministic (no wall-clock, no randomized eviction: FIFO
// by insertion) and single-owner: one control loop queries it from the
// calling thread only.
#ifndef CORRAL_CTRL_PLAN_CACHE_H_
#define CORRAL_CTRL_PLAN_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "corral/planner.h"

namespace corral {

// Content checksum over every field of a plan (FNV-1a). Stored with each
// cache entry and re-verified on lookup, so scribbled plan bytes surface as
// a detected corruption instead of a silently wrong schedule.
std::uint64_t plan_checksum(const Plan& plan);

struct PlanCacheKey {
  std::uint64_t workload = 0;
  std::uint64_t topology = 0;
  std::uint64_t planner = 0;

  bool operator==(const PlanCacheKey& other) const = default;

  // Single stable id for logging and trace args.
  std::uint64_t combined() const;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  // entries dropped by invalidate_*
  std::uint64_t evictions = 0;      // entries dropped by the capacity cap
  std::uint64_t corruptions = 0;    // checksum mismatches caught by find()
};

class PlanCache {
 public:
  // At most `capacity` cached plans; inserting past it evicts the oldest
  // entry (FIFO — deterministic, no access-time state). capacity must be
  // >= 1; throws std::invalid_argument otherwise.
  explicit PlanCache(std::size_t capacity = 64);

  // Returns the cached plan or nullptr, counting a hit or a miss. A stored
  // plan whose checksum no longer matches its bytes (memory scribble, chaos
  // kCacheCorrupt) is dropped and counted in stats().corruptions, and the
  // lookup degrades to a miss. The pointer stays valid until the next
  // insert/invalidate call.
  const Plan* find(const PlanCacheKey& key);

  // Inserts (or replaces) the plan for `key`. A replacement does not count
  // as an eviction.
  void insert(const PlanCacheKey& key, Plan plan);

  // Drops every entry whose topology fingerprint differs from
  // `current_topology` (rack outage / recovery / reconfiguration); returns
  // how many entries were dropped, which is also added to
  // stats().invalidations.
  std::size_t invalidate_topology_changed(std::uint64_t current_topology);

  // Drops the entry for `key` if present (drift-triggered replan). Returns
  // true when an entry was dropped (counted as an invalidation).
  bool invalidate(const PlanCacheKey& key);

  // Drops everything (counted as invalidations).
  std::size_t invalidate_all();

  // Chaos hook (ctrl/chaos.h kCacheCorrupt): scribbles the stored plan for
  // the entry FIFO-oldest in the cache so the next find() detects a
  // checksum mismatch. Returns false when the cache is empty.
  bool corrupt_oldest();

  // Checkpoint support (src/ctrl/checkpoint): entries in FIFO insertion
  // order plus the running stats. restore() replaces the cache contents,
  // eviction order and counters with the snapshot's.
  struct Snapshot {
    struct Item {
      PlanCacheKey key;
      Plan plan;
    };
    std::vector<Item> entries;  // FIFO order, oldest first
    PlanCacheStats stats;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

  const PlanCacheStats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    PlanCacheKey key;
    Plan plan;
    std::uint64_t checksum = 0;
  };

  std::size_t capacity_;
  PlanCacheStats stats_;
  // Keyed by the combined fingerprint; full keys are stored in the entry
  // and re-checked on lookup, so a 64-bit collision degrades to a miss,
  // never to a wrong plan.
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::deque<std::uint64_t> insertion_order_;  // FIFO eviction queue
};

}  // namespace corral

#endif  // CORRAL_CTRL_PLAN_CACHE_H_
