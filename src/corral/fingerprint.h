// Stable fingerprints for plan-cache keys (docs/control_plane.md).
//
// The control plane caches offline plans keyed by what the planner actually
// saw: the predicted workload, the planning topology, and the planner
// configuration. Fingerprints are FNV-1a hashes over the *semantic* fields
// only — job ids and arrival offsets are excluded (a recurring job keeps
// its identity across instances), and data sizes / task counts are
// quantized into relative log-space buckets so the small day-to-day
// prediction wiggle of a recurring job (§2: ~6.5% error) maps to the same
// key and hits the cache, while a genuinely different workload misses.
//
// Everything here is a pure function of its inputs, so fingerprints are
// byte-identical across runs, pool widths and platforms with IEEE doubles.
#ifndef CORRAL_CORRAL_FINGERPRINT_H_
#define CORRAL_CORRAL_FINGERPRINT_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "cluster/topology.h"
#include "corral/latency_model.h"
#include "corral/planner.h"
#include "jobs/job.h"

namespace corral {

// Incremental FNV-1a (64-bit). Doubles are mixed by bit pattern, so equal
// doubles always hash equal and NaN payloads are at least deterministic.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t value);
  Fingerprint& mix(double value);
  Fingerprint& mix(std::string_view text);

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 1469598103934665603ull;  // FNV offset basis
};

// Relative log-space bucket of a positive quantity: two values within
// roughly `quantum` (e.g. 0.15 = 15%) of each other land in the same
// bucket. Zero and negatives map to a reserved bucket. quantum must be > 0.
std::int64_t quantize_log(double value, double quantum);

// One job's semantic shape: name, DAG edges, and per-stage quantized
// bytes/task counts plus processing rates. Excludes id and arrival.
std::uint64_t job_fingerprint(const JobSpec& job, double size_quantum);

// Order-sensitive combination over a whole workload (the planner's input
// order is part of the plan's meaning).
std::uint64_t workload_fingerprint(std::span<const JobSpec> jobs,
                                   double size_quantum);

// The planning universe: cluster shape, bandwidth parameters, and the
// sorted usable-rack set (empty span = all racks healthy). A rack outage
// changes this fingerprint, which is what invalidates cached plans.
std::uint64_t topology_fingerprint(const ClusterConfig& cluster,
                                   std::span<const int> usable_racks = {});

// Objective plus the §4.2 ablation switches. The pool/tracer fields are
// execution detail, not plan semantics, and are excluded.
std::uint64_t planner_fingerprint(const PlannerConfig& config);

// Latency-model parameters (for memoized response functions).
std::uint64_t latency_params_fingerprint(const LatencyModelParams& params);

}  // namespace corral

#endif  // CORRAL_CORRAL_FINGERPRINT_H_
