#include "corral/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "exec/exec.h"
#include "obs/trace.h"
#include "util/check.h"

namespace corral {
namespace {

// Reusable buffers for one prioritization pass, so the provisioning loop's
// J*R evaluations do not allocate.
struct Scratch {
  std::vector<int> order;        // job indices in scheduling order
  std::vector<Seconds> key;      // L_j(r_j) per job, precomputed for sorting
  std::vector<Seconds> finish;   // F_i per rack
  std::vector<int> rack_order;   // rack indices sorted by F_i
  std::vector<Seconds> sorted_finish;  // F values ascending (evaluation path)
  // Constrained-pass state (corral/placement.h), rebuilt per pass:
  std::vector<int> allowed;       // racks still open to the current job
  std::vector<int> set_ids;       // sorted distinct anti-affinity set ids
  std::vector<char> set_rack;     // [set][rack]: used by a member of the set
  std::vector<char> rack_used;    // assigned to any job so far
  std::vector<char> exclusive_rack;  // claimed by a rack-exclusive job
};

// Timestamp source for planner trace events: logical step indices by
// default (deterministic at any pool width), real elapsed seconds when the
// tracer opted into wall clock (TracerOptions::wall_clock, profiling only).
class PlanClock {
 public:
  explicit PlanClock(bool wall)
      : wall_(wall), start_(std::chrono::steady_clock::now()) {}

  double at(double step) const {
    if (!wall_) return step;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  bool wall_;
  std::chrono::steady_clock::time_point start_;
};

std::string rack_list_string(const std::vector<int>& racks) {
  std::string out;
  for (std::size_t i = 0; i < racks.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(racks[i]);
  }
  return out;
}

// Figure 4: schedules jobs in priority order onto racks, filling `plan`
// rack sets, start times and priorities. `initial_finish` (when non-null)
// seeds the per-rack availability F_i, which lets rolling-horizon planning
// chain windows. Returns {makespan, avg completion}; `final_finish` (when
// non-null) receives the resulting F_i.
//
// When config.placements carries a real constraint, every job's rack pick
// is filtered first: ineligible racks (resource classes), racks already
// held by the job's anti-affinity set, racks claimed by a rack-exclusive
// job, and — for exclusive jobs — racks any other job touched. A pass that
// cannot seat a job returns infinity in evaluation mode (so the
// provisioning search rejects the candidate) and throws a deterministic
// error in plan-building mode. Cross-job state (set membership,
// exclusivity) binds per pass — for plan_rolling that means per window.
std::pair<Seconds, Seconds> run_prioritization(
    std::span<const ResponseFunction> jobs, std::span<const int> racks_per_job,
    int num_racks, const PlannerConfig& config, Scratch& scratch, Plan* plan,
    const std::vector<Seconds>* initial_finish = nullptr,
    std::vector<Seconds>* final_finish = nullptr, int priority_base = 0,
    const obs::TraceRecorder* trace = nullptr,
    const PlanClock* clock = nullptr) {
  const std::size_t J = jobs.size();
  const std::vector<JobPlacement>* placements = config.placements;
  const bool constrained =
      placements != nullptr && any_constrained(*placements);

  scratch.order.resize(J);
  std::iota(scratch.order.begin(), scratch.order.end(), 0);
  // Precompute L_j(r_j) once per job: the sort comparators would otherwise
  // walk ResponseFunction::at's piecewise table O(J log J) times, which
  // dominates the provisioning search's J*R evaluations.
  scratch.key.resize(J);
  for (std::size_t s = 0; s < J; ++s) {
    scratch.key[s] = jobs[s].at(racks_per_job[s]);
  }
  const auto batch_less = [&](int a, int b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    // Widest-job first avoids "holes" in the schedule; ties by LPT.
    if (config.widest_job_first && racks_per_job[sa] != racks_per_job[sb]) {
      return racks_per_job[sa] > racks_per_job[sb];
    }
    const Seconds la = scratch.key[sa];
    const Seconds lb = scratch.key[sb];
    if (la != lb) return la > lb;
    return a < b;
  };
  const auto online_less = [&](int a, int b) {
    const Seconds aa = jobs[static_cast<std::size_t>(a)].arrival();
    const Seconds ab = jobs[static_cast<std::size_t>(b)].arrival();
    if (aa != ab) return aa < ab;
    return batch_less(a, b);
  };
  if (config.objective == Objective::kMakespan) {
    std::sort(scratch.order.begin(), scratch.order.end(), batch_less);
  } else {
    std::sort(scratch.order.begin(), scratch.order.end(), online_less);
  }

  // Evaluation-only path: the provisioning search calls this J*R times and
  // only reads the returned (makespan, avg). The objective depends on the
  // *multiset* of per-rack finish times, never on which physical rack holds
  // which value, so we keep the finish values as one sorted array instead of
  // partial-sorting rack ids per job: the r_j racks that free up earliest
  // are simply the first r_j entries, start = max(arrival, sorted[r_j - 1]),
  // and the update shifts the survivors down and writes r_j copies of the
  // completion at their sorted position. Value-identical to the plan-building
  // path below (max over the same operand set, same add per job, same job
  // order), just O(log R + shift) instead of a rack-id partial sort.
  if (!constrained && plan == nullptr && final_finish == nullptr &&
      trace == nullptr) {
    auto& sorted = scratch.sorted_finish;
    if (initial_finish != nullptr) {
      require(initial_finish->size() == static_cast<std::size_t>(num_racks),
              "run_prioritization: initial finish size mismatch");
      sorted = *initial_finish;
      std::sort(sorted.begin(), sorted.end());
    } else {
      sorted.assign(static_cast<std::size_t>(num_racks), 0.0);
    }
    Seconds makespan = 0;
    Seconds total_flow = 0;
    for (int j : scratch.order) {
      const auto sj = static_cast<std::size_t>(j);
      const int rj = racks_per_job[sj];
      const Seconds start = std::max(
          jobs[sj].arrival(), sorted[static_cast<std::size_t>(rj) - 1]);
      const Seconds completion = start + scratch.key[sj];
      const auto pos =
          std::upper_bound(sorted.begin() + rj, sorted.end(), completion);
      std::move(sorted.begin() + rj, pos, sorted.begin());
      std::fill(pos - rj, pos, completion);
      makespan = std::max(makespan, completion);
      total_flow += completion - jobs[sj].arrival();
    }
    const Seconds avg =
        J == 0 ? 0.0 : total_flow / static_cast<double>(J);
    return {makespan, avg};
  }

  if (initial_finish != nullptr) {
    require(initial_finish->size() == static_cast<std::size_t>(num_racks),
            "run_prioritization: initial finish size mismatch");
    scratch.finish = *initial_finish;
  } else {
    scratch.finish.assign(static_cast<std::size_t>(num_racks), 0.0);
  }
  scratch.rack_order.resize(static_cast<std::size_t>(num_racks));

  // Cross-job constraint state for this pass. Anti-affinity set ids are
  // arbitrary ints; map them onto dense indices of one flattened mask.
  if (constrained) {
    scratch.set_ids.clear();
    for (const JobPlacement& p : *placements) {
      if (p.anti_affinity >= 0) scratch.set_ids.push_back(p.anti_affinity);
    }
    std::sort(scratch.set_ids.begin(), scratch.set_ids.end());
    scratch.set_ids.erase(
        std::unique(scratch.set_ids.begin(), scratch.set_ids.end()),
        scratch.set_ids.end());
    scratch.set_rack.assign(
        scratch.set_ids.size() * static_cast<std::size_t>(num_racks), 0);
    scratch.rack_used.assign(static_cast<std::size_t>(num_racks), 0);
    scratch.exclusive_rack.assign(static_cast<std::size_t>(num_racks), 0);
  }

  const auto rack_less = [&](int a, int b) {
    const Seconds fa = scratch.finish[static_cast<std::size_t>(a)];
    const Seconds fb = scratch.finish[static_cast<std::size_t>(b)];
    if (fa != fb) return fa < fb;
    return a < b;
  };

  Seconds makespan = 0;
  Seconds total_flow = 0;
  int priority = priority_base;
  for (int j : scratch.order) {
    const auto sj = static_cast<std::size_t>(j);
    const int rj = racks_per_job[sj];
    const Seconds latency = scratch.key[sj];

    // Pick the r_j racks that free up earliest (among the racks the job's
    // placement constraints leave open, in a constrained pass).
    const JobPlacement* pl = constrained ? &(*placements)[sj] : nullptr;
    int set_index = -1;
    if (pl != nullptr && pl->anti_affinity >= 0) {
      set_index = static_cast<int>(
          std::lower_bound(scratch.set_ids.begin(), scratch.set_ids.end(),
                           pl->anti_affinity) -
          scratch.set_ids.begin());
    }
    if (constrained) {
      scratch.allowed.clear();
      for (int r = 0; r < num_racks; ++r) {
        const auto sr = static_cast<std::size_t>(r);
        if (!pl->eligible[sr]) continue;
        if (scratch.exclusive_rack[sr]) continue;
        if (pl->rack_exclusive && scratch.rack_used[sr]) continue;
        if (set_index >= 0 &&
            scratch.set_rack[static_cast<std::size_t>(set_index) *
                                 static_cast<std::size_t>(num_racks) +
                             sr]) {
          continue;
        }
        scratch.allowed.push_back(r);
      }
      if (static_cast<int>(scratch.allowed.size()) < rj) {
        // Evaluation mode: the provisioning search treats an unseatable
        // candidate as infinitely bad. Plan-building mode: the request is
        // genuinely infeasible — fail with the offending job.
        if (plan == nullptr) {
          const Seconds inf = std::numeric_limits<Seconds>::infinity();
          return {inf, inf};
        }
        require(false, "placement: job " + std::to_string(j) + " needs " +
                           std::to_string(rj) + " racks but only " +
                           std::to_string(scratch.allowed.size()) +
                           " remain eligible after placement filters");
      }
      std::partial_sort(scratch.allowed.begin(), scratch.allowed.begin() + rj,
                        scratch.allowed.end(), rack_less);
      std::copy(scratch.allowed.begin(), scratch.allowed.begin() + rj,
                scratch.rack_order.begin());
    } else {
      std::iota(scratch.rack_order.begin(), scratch.rack_order.end(), 0);
      std::partial_sort(scratch.rack_order.begin(),
                        scratch.rack_order.begin() + rj,
                        scratch.rack_order.end(), rack_less);
    }

    Seconds start = jobs[sj].arrival();
    for (int i = 0; i < rj; ++i) {
      start = std::max(
          start,
          scratch.finish[static_cast<std::size_t>(scratch.rack_order[
              static_cast<std::size_t>(i)])]);
    }
    const Seconds completion = start + latency;
    for (int i = 0; i < rj; ++i) {
      scratch.finish[static_cast<std::size_t>(
          scratch.rack_order[static_cast<std::size_t>(i)])] = completion;
    }
    if (constrained) {
      for (int i = 0; i < rj; ++i) {
        const auto sr = static_cast<std::size_t>(
            scratch.rack_order[static_cast<std::size_t>(i)]);
        scratch.rack_used[sr] = 1;
        if (pl->rack_exclusive) scratch.exclusive_rack[sr] = 1;
        if (set_index >= 0) {
          scratch.set_rack[static_cast<std::size_t>(set_index) *
                               static_cast<std::size_t>(num_racks) +
                           sr] = 1;
        }
      }
    }
    makespan = std::max(makespan, completion);
    total_flow += completion - jobs[sj].arrival();

    if (plan != nullptr) {
      PlannedJob& planned = plan->jobs[sj];
      planned.job_index = j;
      planned.num_racks = rj;
      planned.racks.assign(scratch.rack_order.begin(),
                           scratch.rack_order.begin() + rj);
      std::sort(planned.racks.begin(), planned.racks.end());
      planned.start_time = start;
      planned.predicted_latency = latency;
      planned.priority = priority;
      // The "why did job j get racks R_j" decision log: one event per
      // scheduling decision, in priority order, from the calling thread.
      if (trace != nullptr && trace->at(obs::TraceLevel::kJobs)) {
        std::vector<obs::TraceArg> args = {
            obs::arg("job", static_cast<double>(j)),
            obs::arg("num_racks", static_cast<double>(rj)),
            obs::arg("racks", rack_list_string(planned.racks)),
            obs::arg("start_s", start),
            obs::arg("latency_s", latency),
            obs::arg("priority", static_cast<double>(priority))};
        // Constrained jobs log why the pick was narrowed; unconstrained
        // assign events stay byte-identical to the pre-placement format.
        if (pl != nullptr && pl->constrained) {
          args.push_back(obs::arg("eligible_racks",
                                  static_cast<double>(pl->eligible_count)));
          args.push_back(obs::arg("anti_affinity",
                                  static_cast<double>(pl->anti_affinity)));
          args.push_back(
              obs::arg("exclusive", pl->rack_exclusive ? 1.0 : 0.0));
        }
        trace->instant(
            obs::TraceTrack::kPlanner, "assign", "planner", j,
            clock != nullptr ? clock->at(static_cast<double>(priority))
                             : static_cast<double>(priority),
            std::move(args));
      }
    }
    ++priority;
  }
  if (final_finish != nullptr) *final_finish = scratch.finish;
  const Seconds avg_flow = J == 0 ? 0.0 : total_flow / static_cast<double>(J);
  return {makespan, avg_flow};
}

void validate_inputs(std::span<const ResponseFunction> jobs, int num_racks,
                     const PlannerConfig& config) {
  require(num_racks >= 1, "plan: num_racks must be >= 1");
  for (const ResponseFunction& f : jobs) {
    require(f.max_racks() >= num_racks,
            "plan: response function does not cover the cluster's racks");
  }
  if (config.placements != nullptr) {
    require(config.placements->size() == jobs.size(),
            "plan: placements must cover every job");
    for (const JobPlacement& p : *config.placements) {
      require(p.eligible.size() == static_cast<std::size_t>(num_racks),
              "plan: placement eligibility does not cover the racks");
    }
  }
}

// Per-worker scratch slots for one provisioning search: slot w belongs to
// pool worker w exclusively (the exec:: scratch-ownership rule), so the
// candidate evaluations never share mutable state.
using ScratchSlots = std::vector<Scratch>;

// The widen-longest chain of the provisioning phase (§4.2): which job is
// widened at each step. The choice depends only on the racks vector — never
// on the evaluation results — so the whole candidate sequence is known
// before any prioritization pass runs, and the J*R evaluations are
// embarrassingly parallel.
std::vector<int> widening_chain(std::span<const ResponseFunction> jobs,
                                int num_racks, const PlannerConfig& config) {
  const std::size_t J = jobs.size();
  std::vector<int> racks(J, 1);
  std::vector<int> chain;
  chain.reserve(J * static_cast<std::size_t>(num_racks));
  // Cache L_j(r_j): each widening step changes exactly one job's latency,
  // so the argmax scan below need not re-walk every response function.
  std::vector<Seconds> latency(J);
  for (std::size_t j = 0; j < J; ++j) latency[j] = jobs[j].at(racks[j]);
  // A job can never grow past the racks its placement leaves eligible —
  // widening beyond that only produces candidates the prioritization pass
  // would reject anyway.
  std::vector<int> width_cap(J, num_racks);
  if (config.placements != nullptr) {
    for (std::size_t j = 0; j < J; ++j) {
      width_cap[j] =
          std::min(num_racks, (*config.placements)[j].eligible_count);
    }
  }
  // Total allocated racks among widened jobs, for the [19]-style stop rule.
  long widened_total = 0;
  while (true) {
    // Find the longest job that can still be widened.
    int longest = -1;
    Seconds longest_latency = -1;
    for (std::size_t j = 0; j < J; ++j) {
      if (racks[j] >= width_cap[j]) continue;
      if (latency[j] > longest_latency) {
        longest_latency = latency[j];
        longest = static_cast<int>(j);
      }
    }
    if (longest < 0) break;  // every job reached r_j = R

    const auto sj = static_cast<std::size_t>(longest);
    if (racks[sj] == 1) widened_total += 2;  // 1 -> 2 racks
    else ++widened_total;
    ++racks[sj];
    latency[sj] = jobs[sj].at(racks[sj]);
    chain.push_back(longest);

    if (!config.explore_full_range && widened_total >= num_racks) break;
  }
  return chain;
}

// The provisioning phase (§4.2) over one window of jobs: starts every job
// at one rack and repeatedly widens the currently-longest job, evaluating
// every candidate allocation with the prioritization phase against the
// given initial rack availability. Candidates are evaluated in parallel in
// chain-order blocks and the argmin is reduced in step order (first minimum
// wins), so the winner is byte-identical to the serial search at any pool
// width. Returns the winning rack-count vector.
std::vector<int> provision(std::span<const ResponseFunction> jobs,
                           int num_racks, const PlannerConfig& config,
                           const std::vector<Seconds>* initial_finish,
                           exec::ThreadPool& pool, ScratchSlots& slots,
                           std::size_t* evaluated_candidates = nullptr) {
  const std::size_t J = jobs.size();
  std::vector<int> racks(J, 1);
  std::vector<int> best_racks = racks;

  const obs::TraceRecorder trace(config.tracer, config.trace_sink, "planner");
  const PlanClock clock(trace.wall_clock());
  const double trace_start = clock.at(0.0);

  const auto evaluate = [&](std::span<const int> allocation,
                            Scratch& scratch) {
    const auto [makespan, avg_flow] =
        run_prioritization(jobs, allocation, num_racks, config, scratch,
                           nullptr, initial_finish);
    return config.objective == Objective::kMakespan ? makespan : avg_flow;
  };

  double best_value = evaluate(racks, slots[0]);
  std::size_t best_step = 0;  // 0 = the all-ones starting allocation

  const std::vector<int> chain = widening_chain(jobs, num_racks, config);
  if (evaluated_candidates != nullptr) {
    *evaluated_candidates += chain.size() + 1;
  }
  if (trace.at(obs::TraceLevel::kTasks)) {
    trace.instant(obs::TraceTrack::kPlanner, "candidate", "planner", -1,
                  clock.at(0.0),
                  {obs::arg("step", 0.0), obs::arg("value", best_value)});
  }

  // Blocked evaluation bounds the materialized candidate allocations to
  // `block * J` ints while keeping every worker busy within a block.
  const std::size_t block = std::max<std::size_t>(
      64, static_cast<std::size_t>(pool.threads()) * 16);
  std::vector<std::vector<int>> candidates;
  std::vector<double> values;
  for (std::size_t begin = 0; begin < chain.size(); begin += block) {
    const std::size_t end = std::min(begin + block, chain.size());
    candidates.clear();
    for (std::size_t step = begin; step < end; ++step) {
      ++racks[static_cast<std::size_t>(chain[step])];
      candidates.push_back(racks);
    }
    values.assign(candidates.size(), 0.0);
    exec::parallel_for_workers(
        pool, candidates.size(), [&](int worker, std::size_t i) {
          values[i] =
              evaluate(candidates[i], slots[static_cast<std::size_t>(worker)]);
        });
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t step = begin + i + 1;
      // Per-candidate log entries are recorded here — after the parallel
      // block, on the calling thread, in step order — never from the
      // workers, so the log is byte-identical at any pool width.
      if (trace.at(obs::TraceLevel::kTasks)) {
        const auto widened = static_cast<std::size_t>(chain[step - 1]);
        trace.instant(obs::TraceTrack::kPlanner, "candidate", "planner",
                      chain[step - 1], clock.at(static_cast<double>(step)),
                      {obs::arg("step", static_cast<double>(step)),
                       obs::arg("widened_job", static_cast<double>(widened)),
                       obs::arg("widened_to",
                                static_cast<double>(candidates[i][widened])),
                       obs::arg("value", values[i])});
      }
      if (values[i] < best_value) {
        best_value = values[i];
        best_step = step;
        best_racks = std::move(candidates[i]);
      }
    }
  }
  if (trace.at(obs::TraceLevel::kJobs)) {
    trace.span(
        obs::TraceTrack::kPlanner, "provision", "planner", 0, trace_start,
        clock.at(static_cast<double>(chain.size() + 1)),
        {obs::arg("jobs", static_cast<double>(J)),
         obs::arg("candidates", static_cast<double>(chain.size() + 1)),
         obs::arg("best_step", static_cast<double>(best_step)),
         obs::arg("best_value", best_value),
         obs::arg("objective", config.objective == Objective::kMakespan
                                   ? std::string("makespan")
                                   : std::string("avg_completion"))});
  }
  return best_racks;
}

// Pool + scratch slots for one planning call: the configured pool (shared
// by default) and one Scratch per worker.
exec::ThreadPool& pool_of(const PlannerConfig& config) {
  return config.pool != nullptr ? *config.pool : exec::ThreadPool::shared();
}

}  // namespace

Plan prioritize(std::span<const ResponseFunction> jobs,
                std::span<const int> racks_per_job, int num_racks,
                const PlannerConfig& config) {
  validate_inputs(jobs, num_racks, config);
  require(racks_per_job.size() == jobs.size(),
          "prioritize: racks_per_job size mismatch");
  for (int r : racks_per_job) {
    require(r >= 1 && r <= num_racks, "prioritize: rack count out of range");
  }
  Plan plan;
  plan.jobs.resize(jobs.size());
  Scratch scratch;
  const obs::TraceRecorder trace(config.tracer, config.trace_sink, "planner");
  const PlanClock clock(trace.wall_clock());
  const double trace_start = clock.at(0.0);
  const auto [makespan, avg_flow] = run_prioritization(
      jobs, racks_per_job, num_racks, config, scratch, &plan, nullptr,
      nullptr, 0, &trace, &clock);
  plan.predicted_makespan = makespan;
  plan.predicted_avg_completion = avg_flow;
  if (trace.at(obs::TraceLevel::kJobs)) {
    trace.span(obs::TraceTrack::kPlanner, "prioritize", "planner", 0,
               trace_start, clock.at(static_cast<double>(jobs.size())),
               {obs::arg("jobs", static_cast<double>(jobs.size())),
                obs::arg("predicted_makespan_s", makespan),
                obs::arg("predicted_avg_completion_s", avg_flow)});
  }
  return plan;
}

Plan plan_offline(std::span<const ResponseFunction> jobs, int num_racks,
                  const PlannerConfig& config) {
  validate_inputs(jobs, num_racks, config);
  if (jobs.empty()) return Plan{};
  exec::ThreadPool& pool = pool_of(config);
  ScratchSlots slots(static_cast<std::size_t>(pool.threads()));
  std::size_t evaluated = 0;
  const std::vector<int> best_racks =
      provision(jobs, num_racks, config, nullptr, pool, slots, &evaluated);
  Plan plan = prioritize(jobs, best_racks, num_racks, config);
  plan.evaluated_candidates = evaluated;
  return plan;
}

Plan plan_offline(std::span<const JobSpec> jobs, const ClusterConfig& cluster,
                  const PlannerConfig& config) {
  const LatencyModelParams params = LatencyModelParams::from_cluster(cluster);
  const std::vector<ResponseFunction> functions =
      build_response_functions(jobs, cluster.racks, params);
  if (config.placements == nullptr && any_constrained(jobs)) {
    const std::vector<JobPlacement> placements =
        resolve_placements(jobs, cluster);
    PlannerConfig resolved = config;
    resolved.placements = &placements;
    return plan_offline(functions, cluster.racks, resolved);
  }
  return plan_offline(functions, cluster.racks, config);
}

Plan plan_offline(std::span<const JobSpec> jobs, const ClusterConfig& cluster,
                  const PlannerConfig& config,
                  std::span<const int> usable_racks) {
  require(!usable_racks.empty(),
          "plan_offline: need at least one usable rack");
  std::vector<bool> seen(static_cast<std::size_t>(cluster.racks), false);
  for (int r : usable_racks) {
    require(r >= 0 && r < cluster.racks,
            "plan_offline: usable rack id out of range");
    require(!seen[static_cast<std::size_t>(r)],
            "plan_offline: duplicate usable rack id");
    seen[static_cast<std::size_t>(r)] = true;
  }
  // Plan on a virtual cluster of usable_racks.size() racks, then map the
  // virtual rack ids back onto the surviving physical racks. The latency
  // model's per-rack parameters are unchanged: a degraded cluster is a
  // smaller cluster of whole racks.
  const int virtual_racks = static_cast<int>(usable_racks.size());
  const LatencyModelParams params = LatencyModelParams::from_cluster(cluster);
  const std::vector<ResponseFunction> functions =
      build_response_functions(jobs, virtual_racks, params);
  // Placement constraints resolve against physical racks, then project onto
  // the planning view so eligibility follows a rack into its virtual id.
  std::vector<JobPlacement> view_placements;
  PlannerConfig view_config = config;
  if (config.placements != nullptr) {
    view_placements = remap_placements(*config.placements, jobs, usable_racks);
    view_config.placements = &view_placements;
  } else if (any_constrained(jobs)) {
    const std::vector<JobPlacement> physical =
        resolve_placements(jobs, cluster);
    view_placements = remap_placements(physical, jobs, usable_racks);
    view_config.placements = &view_placements;
  }
  Plan plan = plan_offline(functions, virtual_racks, view_config);
  for (PlannedJob& job : plan.jobs) {
    for (int& r : job.racks) r = usable_racks[static_cast<std::size_t>(r)];
  }
  return plan;
}

Plan plan_rolling(std::span<const ResponseFunction> jobs, int num_racks,
                  const PlannerConfig& config, Seconds period) {
  validate_inputs(jobs, num_racks, config);
  require(period > 0, "plan_rolling: period must be positive");
  Plan plan;
  plan.jobs.resize(jobs.size());
  if (jobs.empty()) return plan;

  // Group job indices by arrival window.
  Seconds last_arrival = 0;
  for (const ResponseFunction& job : jobs) {
    last_arrival = std::max(last_arrival, job.arrival());
  }
  const int windows = static_cast<int>(last_arrival / period) + 1;
  std::vector<std::vector<int>> window_jobs(
      static_cast<std::size_t>(windows));
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto w = static_cast<std::size_t>(jobs[j].arrival() / period);
    window_jobs[w].push_back(static_cast<int>(j));
  }

  exec::ThreadPool& pool = pool_of(config);
  ScratchSlots slots(static_cast<std::size_t>(pool.threads()));
  const obs::TraceRecorder trace(config.tracer, config.trace_sink, "planner");
  const PlanClock clock(trace.wall_clock());
  std::vector<Seconds> finish(static_cast<std::size_t>(num_racks), 0.0);
  Seconds makespan = 0;
  Seconds total_flow = 0;
  int priority_base = 0;
  for (std::size_t w = 0; w < window_jobs.size(); ++w) {
    const std::vector<int>& indices = window_jobs[w];
    if (indices.empty()) continue;
    std::vector<ResponseFunction> window;
    window.reserve(indices.size());
    for (int j : indices) window.push_back(jobs[static_cast<std::size_t>(j)]);

    // Placements are sliced to the window's jobs; anti-affinity and
    // exclusivity therefore bind within a window, matching the rolling
    // model's view that each window plans against fresh rack availability.
    PlannerConfig window_config = config;
    std::vector<JobPlacement> window_placements;
    if (config.placements != nullptr) {
      window_placements.reserve(indices.size());
      for (int j : indices) {
        window_placements.push_back(
            (*config.placements)[static_cast<std::size_t>(j)]);
      }
      window_config.placements = &window_placements;
    }

    const double window_start = clock.at(static_cast<double>(priority_base));
    const std::vector<int> racks =
        provision(window, num_racks, window_config, &finish, pool, slots,
                  &plan.evaluated_candidates);
    Plan window_plan;
    window_plan.jobs.resize(window.size());
    const auto [window_makespan, window_avg] = run_prioritization(
        window, racks, num_racks, window_config, slots[0], &window_plan,
        &finish, &finish, priority_base, &trace, &clock);
    // Window-local assign events above use window-local job ids; the span's
    // "job_indices" arg maps them back to the planner's input order.
    if (trace.at(obs::TraceLevel::kJobs)) {
      trace.span(
          obs::TraceTrack::kPlanner, "window", "planner",
          static_cast<long>(w), window_start,
          clock.at(static_cast<double>(priority_base +
                                       static_cast<int>(window.size()))),
          {obs::arg("window", static_cast<double>(w)),
           obs::arg("window_start_s", static_cast<double>(w) * period),
           obs::arg("jobs", static_cast<double>(window.size())),
           obs::arg("job_indices", rack_list_string(indices)),
           obs::arg("window_makespan_s", window_makespan)});
    }
    makespan = std::max(makespan, window_makespan);
    total_flow += window_avg * static_cast<double>(window.size());
    priority_base += static_cast<int>(window.size());

    for (std::size_t i = 0; i < indices.size(); ++i) {
      PlannedJob planned = window_plan.jobs[i];
      planned.job_index = indices[i];
      plan.jobs[static_cast<std::size_t>(indices[i])] = std::move(planned);
    }
  }
  plan.predicted_makespan = makespan;
  plan.predicted_avg_completion =
      total_flow / static_cast<double>(jobs.size());
  return plan;
}

}  // namespace corral
