// LP relaxation lower bounds (Appendix A).
//
// LP-Batch bounds the makespan of *any* schedule that assigns resources at
// rack/job granularity; the paper uses it to show the two-phase heuristic is
// within ~3% of optimal in the batch case and ~15% online. We solve
// LP-Batch two ways:
//
//  * a closed-form reduction: for a fixed makespan T the LP decomposes per
//    job into a 2-constraint LP whose value is the lower convex envelope of
//    the points (L_j(r), r * L_j(r)); feasibility of T is then a single
//    aggregate capacity check, and the bound is found by binary search;
//  * the generic simplex solver on the LP as written in the appendix, used
//    to cross-validate the reduction on small instances.
//
// The paper omits the full online formulation ("we omit the full description
// for brevity"); we use a valid-but-looser relaxation: the maximum of the
// minimum-latency bound and a preemptive SRPT bound on an aggregate
// capacity of R rack-units (see DESIGN.md).
#ifndef CORRAL_CORRAL_LP_BOUND_H_
#define CORRAL_CORRAL_LP_BOUND_H_

#include <span>

#include "corral/latency_model.h"

namespace corral {

namespace exec {
class ThreadPool;
}  // namespace exec

// Lower bound on the makespan of any rack-granular schedule (LP-Batch).
// Solved by the convex-envelope reduction + binary search; scales to
// hundreds of jobs and racks. The per-job envelope subproblems run on
// `pool` (nullptr = exec::ThreadPool::shared()); the feasibility search
// reduces them in job order, so the bound is identical at any pool width.
Seconds lp_batch_makespan_bound(std::span<const ResponseFunction> jobs,
                                int num_racks,
                                exec::ThreadPool* pool = nullptr);

// Same bound computed with the dense simplex solver; intended for small
// instances (J * R up to a few thousand variables).
Seconds lp_batch_makespan_bound_simplex(std::span<const ResponseFunction> jobs,
                                        int num_racks);

// Lower bound on the average completion (flow) time in the online scenario.
Seconds online_avg_completion_bound(std::span<const ResponseFunction> jobs,
                                    int num_racks);

}  // namespace corral

#endif  // CORRAL_CORRAL_LP_BOUND_H_
