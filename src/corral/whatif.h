// What-if capacity queries on top of the planner and the LP bounds.
//
// The offline planner answers "how do I run this workload on this
// cluster?"; operators just as often ask the inverse: "how much cluster
// does this workload need?". This module sweeps rack counts with the §4.2
// heuristic and uses the Appendix-A LP bound to *certify* infeasibility —
// if even the relaxation misses the deadline, no rack-granular schedule can
// meet it.
#ifndef CORRAL_CORRAL_WHATIF_H_
#define CORRAL_CORRAL_WHATIF_H_

#include <span>

#include "corral/planner.h"

namespace corral {

enum class DeadlineVerdict {
  kFits,        // the heuristic plan meets the deadline
  kAtRisk,      // the heuristic misses it but the LP bound leaves room
  kImpossible,  // even the LP relaxation misses the deadline
};

struct DeadlineAssessment {
  int racks = 0;
  Seconds planned_makespan = 0;
  Seconds lower_bound = 0;
  DeadlineVerdict verdict = DeadlineVerdict::kImpossible;
};

// Assesses one cluster size. `cluster.racks` is taken from the argument.
// Throws std::invalid_argument for non-positive deadlines (same contract as
// plan_capacity). `pool` runs the planner's provisioning search and the LP
// subproblems; nullptr uses exec::ThreadPool::shared().
DeadlineAssessment assess_deadline(std::span<const JobSpec> jobs,
                                   const ClusterConfig& cluster,
                                   Seconds deadline,
                                   exec::ThreadPool* pool = nullptr);

struct CapacityPlan {
  // Smallest rack count whose heuristic plan fits the deadline; -1 when no
  // count up to max_racks fits.
  int racks_needed = -1;
  // Smallest rack count not *provably* infeasible (LP bound <= deadline);
  // a certified floor on the answer.
  int certified_floor = -1;
  std::vector<DeadlineAssessment> sweep;  // one entry per rack count tried
};

// Sweeps rack counts 1..max_racks (geometrically refined around the
// transition) and returns the capacity verdicts. `cluster` supplies the
// per-rack shape (machines, slots, NIC, oversubscription); its rack count
// is ignored. Throws std::invalid_argument for non-positive deadlines or
// max_racks. The per-rack-count assessments are independent and run in
// parallel on `pool` (nullptr = exec::ThreadPool::shared()); the sweep is
// reduced in rack-count order, so the result is identical at any width.
CapacityPlan plan_capacity(std::span<const JobSpec> jobs,
                           const ClusterConfig& cluster, Seconds deadline,
                           int max_racks, exec::ThreadPool* pool = nullptr);

}  // namespace corral

#endif  // CORRAL_CORRAL_WHATIF_H_
