#include "corral/dataset_lp.h"

#include <algorithm>

#include "lp/simplex.h"
#include "util/check.h"

namespace corral {

DatasetPlacementResult place_datasets(
    const DatasetPlacementProblem& problem) {
  const int D = static_cast<int>(problem.datasets.size());
  const int R = problem.num_racks;
  require(R >= 1, "place_datasets: num_racks must be >= 1");
  require(problem.reads.size() == problem.job_racks.size(),
          "place_datasets: reads/job_racks length mismatch");
  require(problem.balance_slack >= 0,
          "place_datasets: balance_slack must be non-negative");
  Bytes total = 0;
  for (const Dataset& dataset : problem.datasets) {
    require(dataset.bytes >= 0, "place_datasets: negative dataset size");
    total += dataset.bytes;
  }
  for (const auto& racks : problem.job_racks) {
    for (int r : racks) {
      require(r >= 0 && r < R, "place_datasets: rack index out of range");
    }
  }

  DatasetPlacementResult result;
  result.fraction.assign(static_cast<std::size_t>(D),
                         std::vector<double>(static_cast<std::size_t>(R),
                                             0.0));
  if (D == 0) {
    result.optimal = true;
    return result;
  }

  // Objective: maximize covered bytes. Coefficient of x_{d,r} is S_d times
  // the number of jobs reading d whose rack set contains r.
  const auto x_index = [R](int d, int r) { return d * R + r; };
  std::vector<double> gain(static_cast<std::size_t>(D * R), 0.0);
  Bytes demanded = 0;  // total bytes jobs want to read
  for (std::size_t j = 0; j < problem.reads.size(); ++j) {
    for (int d : problem.reads[j]) {
      require(d >= 0 && d < D, "place_datasets: dataset index out of range");
      demanded += problem.datasets[static_cast<std::size_t>(d)].bytes;
      for (int r : problem.job_racks[j]) {
        gain[static_cast<std::size_t>(x_index(d, r))] +=
            problem.datasets[static_cast<std::size_t>(d)].bytes;
      }
    }
  }

  LpProblem lp(D * R);
  lp.maximize(gain);
  // Each dataset fully placed.
  for (int d = 0; d < D; ++d) {
    std::vector<std::pair<int, double>> row;
    for (int r = 0; r < R; ++r) row.emplace_back(x_index(d, r), 1.0);
    lp.add_constraint_sparse(row, Relation::kEqual, 1.0);
  }
  // Rack capacity: no rack exceeds its balanced share by more than the
  // slack factor.
  const double capacity = total / R * (1.0 + problem.balance_slack);
  for (int r = 0; r < R; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int d = 0; d < D; ++d) {
      row.emplace_back(x_index(d, r),
                       problem.datasets[static_cast<std::size_t>(d)].bytes);
    }
    lp.add_constraint_sparse(row, Relation::kLessEqual, capacity);
  }

  const LpSolution solution = lp.solve();
  if (!solution.optimal()) return result;  // optimal == false

  result.optimal = true;
  for (int d = 0; d < D; ++d) {
    for (int r = 0; r < R; ++r) {
      result.fraction[static_cast<std::size_t>(d)]
                     [static_cast<std::size_t>(r)] =
          std::clamp(solution.x[static_cast<std::size_t>(x_index(d, r))],
                     0.0, 1.0);
    }
  }
  result.expected_cross_rack_bytes =
      std::max(0.0, demanded - solution.objective);
  return result;
}

}  // namespace corral
