#include "corral/lp_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "exec/exec.h"
#include "lp/simplex.h"
#include "util/check.h"

namespace corral {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lower convex envelope of the points {(L_j(r), W_j(r) = r * L_j(r))}: the
// minimum rack-seconds of work a job can be "fractionally" completed with,
// as a function of its latency budget T. envelope(T) is non-increasing and
// convex; +inf below the minimum achievable latency.
class WorkEnvelope {
 public:
  WorkEnvelope(const ResponseFunction& job, int num_racks) {
    std::vector<std::pair<double, double>> points;  // (latency, work)
    points.reserve(static_cast<std::size_t>(num_racks));
    for (int r = 1; r <= num_racks; ++r) {
      points.emplace_back(job.at(r), static_cast<double>(r) * job.at(r));
    }
    std::sort(points.begin(), points.end());
    // Keep only points on the lower-left convex boundary: strictly
    // decreasing work as latency increases, and convex turns.
    for (const auto& p : points) {
      if (!hull_.empty() && p.second >= hull_.back().second) continue;
      while (hull_.size() >= 2 && !convex_turn(hull_[hull_.size() - 2],
                                               hull_.back(), p)) {
        hull_.pop_back();
      }
      hull_.push_back(p);
    }
    ensure(!hull_.empty(), "WorkEnvelope: no points");
  }

  double min_latency() const { return hull_.front().first; }

  // Minimum work achievable with expected latency <= budget.
  double work(double budget) const {
    if (budget < hull_.front().first) return kInf;
    if (budget >= hull_.back().first) return hull_.back().second;
    // Find segment [i, i+1] with L_i <= budget < L_{i+1} and interpolate.
    const auto it = std::upper_bound(
        hull_.begin(), hull_.end(), budget,
        [](double b, const std::pair<double, double>& p) {
          return b < p.first;
        });
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double t = (budget - lo.first) / (hi.first - lo.first);
    return lo.second + t * (hi.second - lo.second);
  }

 private:
  // True when b lies strictly below the segment a->c, i.e. keeping b
  // preserves the lower (convex) envelope. With cross = (b-a) x (c-a) in
  // the (L, W) plane, b below the chord corresponds to a positive cross
  // product; b on or above it must be popped.
  static bool convex_turn(const std::pair<double, double>& a,
                          const std::pair<double, double>& b,
                          const std::pair<double, double>& c) {
    const double cross = (b.first - a.first) * (c.second - a.second) -
                         (b.second - a.second) * (c.first - a.first);
    return cross > 0;
  }

  std::vector<std::pair<double, double>> hull_;
};

}  // namespace

Seconds lp_batch_makespan_bound(std::span<const ResponseFunction> jobs,
                                int num_racks, exec::ThreadPool* pool) {
  require(num_racks >= 1, "lp_batch_makespan_bound: num_racks must be >= 1");
  if (jobs.empty()) return 0;
  for (const ResponseFunction& job : jobs) {
    require(job.max_racks() >= num_racks,
            "lp_batch_makespan_bound: response function too narrow");
  }

  // Each job's convex work envelope is an independent subproblem; build
  // them in parallel, then reduce lo / total work serially in job order.
  exec::ThreadPool& exec_pool =
      pool != nullptr ? *pool : exec::ThreadPool::shared();
  std::vector<WorkEnvelope> envelopes = exec::parallel_map(
      exec_pool, jobs.size(),
      [&](int, std::size_t j) { return WorkEnvelope(jobs[j], num_racks); });
  double lo = 0;  // max over jobs of minimum latency: T below is infeasible
  double total_min_work = 0;
  for (const WorkEnvelope& envelope : envelopes) {
    lo = std::max(lo, envelope.min_latency());
    total_min_work += envelope.work(kInf);
  }
  // Aggregate capacity alone forces T >= total work / R.
  lo = std::max(lo, total_min_work / num_racks);

  const auto feasible = [&](double T) {
    double work = 0;
    for (const WorkEnvelope& env : envelopes) {
      const double w = env.work(T);
      if (w == kInf) return false;
      work += w;
      if (work > T * num_racks * (1 + 1e-12)) return false;
    }
    return work <= T * num_racks * (1 + 1e-12);
  };

  if (feasible(lo)) return lo;
  double hi = lo;
  while (!feasible(hi)) hi *= 2;
  for (int iter = 0; iter < 100 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? hi : lo) = mid;
  }
  return hi;
}

Seconds lp_batch_makespan_bound_simplex(std::span<const ResponseFunction> jobs,
                                        int num_racks) {
  require(num_racks >= 1,
          "lp_batch_makespan_bound_simplex: num_racks must be >= 1");
  const int J = static_cast<int>(jobs.size());
  if (J == 0) return 0;

  // Variables: x_{jr} for j in [0,J), r in [1,num_racks]; plus T last.
  const int num_vars = J * num_racks + 1;
  const int t_var = J * num_racks;
  const auto x_index = [&](int j, int r) { return j * num_racks + (r - 1); };

  LpProblem lp(num_vars);
  std::vector<double> objective(static_cast<std::size_t>(num_vars), 0.0);
  objective[static_cast<std::size_t>(t_var)] = 1.0;
  lp.minimize(objective);

  // (2) sum_r x_jr = 1.
  for (int j = 0; j < J; ++j) {
    std::vector<std::pair<int, double>> row;
    for (int r = 1; r <= num_racks; ++r) row.emplace_back(x_index(j, r), 1.0);
    lp.add_constraint_sparse(row, Relation::kEqual, 1.0);
  }
  // (3) sum_r x_jr L_j(r) - T <= 0.
  for (int j = 0; j < J; ++j) {
    std::vector<std::pair<int, double>> row;
    for (int r = 1; r <= num_racks; ++r) {
      row.emplace_back(x_index(j, r), jobs[static_cast<std::size_t>(j)].at(r));
    }
    row.emplace_back(t_var, -1.0);
    lp.add_constraint_sparse(row, Relation::kLessEqual, 0.0);
  }
  // (4) sum_{j,r} x_jr L_j(r) r - T R <= 0.
  {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < J; ++j) {
      for (int r = 1; r <= num_racks; ++r) {
        row.emplace_back(x_index(j, r),
                         jobs[static_cast<std::size_t>(j)].at(r) * r);
      }
    }
    row.emplace_back(t_var, -static_cast<double>(num_racks));
    lp.add_constraint_sparse(row, Relation::kLessEqual, 0.0);
  }

  const LpSolution solution = lp.solve();
  ensure(solution.optimal(), "lp_batch_makespan_bound_simplex: LP not solved");
  return solution.objective;
}

Seconds online_avg_completion_bound(std::span<const ResponseFunction> jobs,
                                    int num_racks) {
  require(num_racks >= 1,
          "online_avg_completion_bound: num_racks must be >= 1");
  const std::size_t J = jobs.size();
  if (J == 0) return 0;

  // Bound 1: every job needs at least its minimum latency.
  double sum_min_latency = 0;
  for (const ResponseFunction& job : jobs) {
    sum_min_latency += job.min_latency();
  }

  // Bound 2: preemptive SRPT on one machine of speed `num_racks`, with
  // processing volume min_r r * L_j(r) rack-seconds per job. SRPT minimizes
  // the total completion time of this relaxation, so its value bounds any
  // rack-granular schedule from below.
  struct Item {
    double arrival;
    double remaining;
  };
  std::vector<Item> items;
  items.reserve(J);
  for (const ResponseFunction& job : jobs) {
    double volume = kInf;
    for (int r = 1; r <= num_racks; ++r) {
      volume = std::min(volume, static_cast<double>(r) * job.at(r));
    }
    items.push_back({job.arrival(), volume});
  }
  std::vector<std::size_t> by_arrival(J);
  for (std::size_t i = 0; i < J; ++i) by_arrival[i] = i;
  std::sort(by_arrival.begin(), by_arrival.end(), [&](auto a, auto b) {
    return items[a].arrival < items[b].arrival;
  });

  const double speed = num_racks;
  double now = 0;
  double srpt_flow_total = 0;
  std::size_t next_arrival = 0;
  std::vector<std::size_t> active;
  std::size_t finished = 0;
  while (finished < J) {
    if (active.empty()) {
      ensure(next_arrival < J, "SRPT bound: no active or pending job");
      now = std::max(now, items[by_arrival[next_arrival]].arrival);
    }
    while (next_arrival < J &&
           items[by_arrival[next_arrival]].arrival <= now + 1e-12) {
      active.push_back(by_arrival[next_arrival]);
      ++next_arrival;
    }
    // Shortest remaining processing time first.
    const auto it = std::min_element(
        active.begin(), active.end(), [&](auto a, auto b) {
          return items[a].remaining < items[b].remaining;
        });
    const std::size_t job = *it;
    const double finish_at = now + items[job].remaining / speed;
    const double next_at = next_arrival < J
                               ? items[by_arrival[next_arrival]].arrival
                               : kInf;
    if (finish_at <= next_at) {
      now = finish_at;
      srpt_flow_total += now - items[job].arrival;
      active.erase(it);
      ++finished;
    } else {
      items[job].remaining -= (next_at - now) * speed;
      now = next_at;
    }
  }

  return std::max(sum_min_latency, srpt_flow_total) /
         static_cast<double>(J);
}

}  // namespace corral
