#include "corral/placement.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace corral {

std::vector<JobPlacement> resolve_placements(std::span<const JobSpec> jobs,
                                             const ClusterConfig& cluster) {
  std::vector<JobPlacement> placements;
  placements.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    const PlacementSpec& spec = job.placement;
    spec.validate();
    JobPlacement placement;
    placement.anti_affinity = spec.anti_affinity;
    placement.rack_exclusive = spec.rack_exclusive;
    placement.constrained = spec.constrained();
    placement.eligible.assign(static_cast<std::size_t>(cluster.racks), 1);
    placement.eligible_count = cluster.racks;
    if (!spec.resource_class.empty()) {
      const ResourceClassConfig* cls = nullptr;
      for (const ResourceClassConfig& candidate : cluster.resource_classes) {
        if (candidate.name == spec.resource_class) {
          cls = &candidate;
          break;
        }
      }
      require(cls != nullptr, "placement: job '" + job.name +
                                  "' requests unknown resource class '" +
                                  spec.resource_class + "'");
      require(spec.resource_units <= cls->units_per_rack,
              "placement: job '" + job.name + "' requests " +
                  std::to_string(spec.resource_units) + " units of '" +
                  spec.resource_class + "' but equipped racks carry " +
                  std::to_string(cls->units_per_rack));
      placement.eligible_count = 0;
      for (int r = 0; r < cluster.racks; ++r) {
        const bool ok =
            cls->units_on_rack(r, cluster.racks) >= spec.resource_units;
        placement.eligible[static_cast<std::size_t>(r)] = ok ? 1 : 0;
        if (ok) ++placement.eligible_count;
      }
      require(placement.eligible_count > 0,
              "placement: job '" + job.name + "' has no rack equipped with '" +
                  spec.resource_class + "'");
    }
    placements.push_back(std::move(placement));
  }
  return placements;
}

bool any_constrained(std::span<const JobSpec> jobs) {
  return std::any_of(jobs.begin(), jobs.end(), [](const JobSpec& job) {
    return job.placement.constrained();
  });
}

bool any_constrained(std::span<const JobPlacement> placements) {
  return std::any_of(
      placements.begin(), placements.end(),
      [](const JobPlacement& placement) { return placement.constrained; });
}

std::vector<JobPlacement> remap_placements(
    std::span<const JobPlacement> placements, std::span<const JobSpec> jobs,
    std::span<const int> usable_racks) {
  require(placements.size() == jobs.size(),
          "remap_placements: placements/jobs size mismatch");
  std::vector<JobPlacement> remapped;
  remapped.reserve(placements.size());
  for (std::size_t j = 0; j < placements.size(); ++j) {
    const JobPlacement& physical = placements[j];
    JobPlacement view = physical;
    view.eligible.assign(usable_racks.size(), 1);
    view.eligible_count = static_cast<int>(usable_racks.size());
    for (std::size_t v = 0; v < usable_racks.size(); ++v) {
      const auto r = static_cast<std::size_t>(usable_racks[v]);
      require(r < physical.eligible.size(),
              "remap_placements: usable rack out of range");
      if (!physical.eligible[r]) {
        view.eligible[v] = 0;
        --view.eligible_count;
      }
    }
    require(!view.constrained || view.eligible_count > 0,
            "placement: job '" + jobs[j].name +
                "' has no eligible rack in the planning view");
    remapped.push_back(std::move(view));
  }
  return remapped;
}

}  // namespace corral
