// Corral's offline planner (§4).
//
// The planning problem: given response functions L_j(r) for a set of jobs
// and a cluster of R racks, choose for every job the number of racks r_j,
// the concrete rack set R_j, a start time T_j and a priority p_j, minimizing
// either makespan (batch scenario) or average completion time (online
// scenario). Both problems are NP-hard; the planner uses the two-phase
// heuristic of §4.2:
//
//  * Provisioning phase — start every job at one rack and repeatedly widen
//    the currently-longest job by one rack, evaluating each of the J*R
//    candidate allocations with the prioritization phase and keeping the
//    best.
//  * Prioritization phase — an extension of LPT to multi-rack (malleable)
//    jobs: widest-job first, ties broken by processing time (Figure 4).
#ifndef CORRAL_CORRAL_PLANNER_H_
#define CORRAL_CORRAL_PLANNER_H_

#include <span>
#include <vector>

#include "corral/latency_model.h"
#include "corral/placement.h"
#include "jobs/job.h"

namespace corral {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace obs {
class Tracer;
}  // namespace obs

enum class Objective { kMakespan, kAverageCompletionTime };

// Which planning algorithm produces the provisioning plan (src/plan,
// docs/planners.md). The enum lives here rather than in src/plan so the
// plan-cache fingerprint (corral/fingerprint.h) and the control plane can
// name a backend without depending on the backend library.
enum class PlannerBackendKind { kCorral = 0, kDagPack = 1, kLpRound = 2 };

struct PlannerConfig {
  Objective objective = Objective::kMakespan;

  // Planning algorithm. plan_offline/plan_rolling below always run the
  // Corral §4.2 heuristic regardless of this field; callers that want
  // backend dispatch go through plan::planner_backend(config.backend)
  // (src/plan/backend.h). The field lives here so it folds into
  // planner_fingerprint() and the control plane's plan-cache key.
  PlannerBackendKind backend = PlannerBackendKind::kCorral;

  // Ablations of §4.2 design choices (see DESIGN.md):
  // Sort equal-width jobs by processing time only (plain LPT) when false.
  bool widest_job_first = true;
  // The paper runs the provisioning loop until every job reaches r_j = R;
  // the earlier heuristic of [19] stops when sum_{j: r_j>1} r_j = R.
  bool explore_full_range = true;

  // Pool for the provisioning phase's candidate evaluations; nullptr uses
  // exec::ThreadPool::shared(). The plan is byte-identical for any width
  // (see DESIGN.md "Execution engine").
  exec::ThreadPool* pool = nullptr;

  // Decision-log tracing (docs/observability.md): when set, the planner
  // records a "provision" span, per-candidate evaluations (at trace level
  // tasks) and per-job "assign" events into `tracer->sink(trace_sink)`.
  // Timestamps are logical step indices unless the tracer opted into wall
  // clock. Candidate events are recorded on the calling thread after each
  // parallel evaluation block, in step order, so the decision log is
  // byte-identical at any pool width.
  obs::Tracer* tracer = nullptr;
  int trace_sink = 0;

  // Resolved placement constraints, one per job in the planner's input
  // order (corral/placement.h), or nullptr when every job is
  // unconstrained. Not part of planner_fingerprint(): placements derive
  // from the jobs and the topology, both fingerprinted already. The
  // spec-taking plan_offline overloads resolve this automatically; callers
  // of the ResponseFunction overloads set it when constraints apply.
  const std::vector<JobPlacement>* placements = nullptr;
};

struct PlannedJob {
  int job_index = 0;        // position in the planner's input
  int num_racks = 1;        // r_j
  std::vector<int> racks;   // R_j, rack ids
  Seconds start_time = 0;   // T_j
  Seconds predicted_latency = 0;  // L_j(r_j)
  int priority = 0;         // p_j; lower value = scheduled earlier

  Seconds predicted_completion() const {
    return start_time + predicted_latency;
  }
};

struct Plan {
  std::vector<PlannedJob> jobs;  // same order as the planner's input
  Seconds predicted_makespan = 0;
  Seconds predicted_avg_completion = 0;  // mean of (completion - arrival)
  // Candidate allocations the provisioning search evaluated to produce this
  // plan (the J*R chain plus the all-ones start; summed over windows for
  // plan_rolling). A deterministic, width-independent measure of replan
  // cost, used by the control plane as its "replan latency" metric — wall
  // time would break the byte-identical-across-threads contract.
  std::size_t evaluated_candidates = 0;

  double objective_value(Objective objective) const {
    return objective == Objective::kMakespan ? predicted_makespan
                                             : predicted_avg_completion;
  }
};

// Plans from precomputed response functions. Every response function must
// cover at least `num_racks` racks.
Plan plan_offline(std::span<const ResponseFunction> jobs, int num_racks,
                  const PlannerConfig& config);

// Convenience overload: builds response functions from job specs with the
// cluster's latency model (imbalance penalty included, §4.5).
Plan plan_offline(std::span<const JobSpec> jobs, const ClusterConfig& cluster,
                  const PlannerConfig& config);

// Plan repair after failures (§7 "Dealing with failures"): plans on the
// subcluster formed by `usable_racks` only (ids must be distinct, valid for
// the cluster, non-empty) and returns rack assignments in physical rack
// ids. Used to re-run provisioning/prioritization over not-yet-started jobs
// when a rack durably degrades.
Plan plan_offline(std::span<const JobSpec> jobs, const ClusterConfig& cluster,
                  const PlannerConfig& config,
                  std::span<const int> usable_racks);

// Runs only the prioritization phase (Figure 4) for a fixed rack-count
// vector; exposed for tests and for the LP-gap study.
Plan prioritize(std::span<const ResponseFunction> jobs,
                std::span<const int> racks_per_job, int num_racks,
                const PlannerConfig& config);

// Rolling-horizon planning (§3.1: "The offline planner will periodically
// receive updated estimates of future workload, rerun the planning problem,
// and update the guidelines to the cluster scheduler"). Jobs are grouped
// into windows of `period` seconds by arrival time; each window is planned
// by the two-phase heuristic against the rack availability left behind by
// the previous windows. Priorities are globally consistent across windows.
Plan plan_rolling(std::span<const ResponseFunction> jobs, int num_racks,
                  const PlannerConfig& config, Seconds period);

}  // namespace corral

#endif  // CORRAL_CORRAL_PLANNER_H_
