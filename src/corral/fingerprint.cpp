#include "corral/fingerprint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace corral {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

Fingerprint& Fingerprint::mix(std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    state_ ^= (value >> (8 * byte)) & 0xffu;
    state_ *= kFnvPrime;
  }
  return *this;
}

Fingerprint& Fingerprint::mix(double value) {
  // Normalize the two zero representations so -0.0 and +0.0 hash equal.
  if (value == 0.0) value = 0.0;
  return mix(std::bit_cast<std::uint64_t>(value));
}

Fingerprint& Fingerprint::mix(std::string_view text) {
  mix(static_cast<std::uint64_t>(text.size()));
  for (const char c : text) {
    state_ ^= static_cast<std::uint8_t>(c);
    state_ *= kFnvPrime;
  }
  return *this;
}

std::int64_t quantize_log(double value, double quantum) {
  require(quantum > 0, "quantize_log: quantum must be positive");
  if (!(value > 0)) return std::numeric_limits<std::int64_t>::min();
  return std::llround(std::log(value) / std::log1p(quantum));
}

std::uint64_t job_fingerprint(const JobSpec& job, double size_quantum) {
  Fingerprint f;
  f.mix(job.name);
  f.mix(static_cast<std::uint64_t>(job.recurring ? 1 : 0));
  f.mix(static_cast<std::uint64_t>(job.stages.size()));
  for (const MapReduceSpec& stage : job.stages) {
    f.mix(stage.name);
    f.mix(static_cast<std::uint64_t>(
        quantize_log(stage.input_bytes, size_quantum)));
    f.mix(static_cast<std::uint64_t>(
        quantize_log(stage.shuffle_bytes, size_quantum)));
    f.mix(static_cast<std::uint64_t>(
        quantize_log(stage.output_bytes, size_quantum)));
    f.mix(static_cast<std::uint64_t>(
        quantize_log(stage.num_maps, size_quantum)));
    f.mix(static_cast<std::uint64_t>(
        quantize_log(stage.num_reduces, size_quantum)));
    f.mix(stage.map_rate);
    f.mix(stage.reduce_rate);
  }
  f.mix(static_cast<std::uint64_t>(job.edges.size()));
  for (const DagEdge& edge : job.edges) {
    f.mix(static_cast<std::uint64_t>(edge.from));
    f.mix(static_cast<std::uint64_t>(edge.to));
  }
  // Placement constraints change the feasible plans, so they must miss the
  // cache. Mixed only when present: unconstrained jobs keep their
  // pre-placement fingerprints (and cached plans) byte-identical.
  if (job.placement.constrained()) {
    f.mix(static_cast<std::uint64_t>(job.placement.anti_affinity));
    f.mix(job.placement.resource_class);
    f.mix(static_cast<std::uint64_t>(job.placement.resource_units));
    f.mix(static_cast<std::uint64_t>(job.placement.rack_exclusive ? 1 : 0));
  }
  return f.value();
}

std::uint64_t workload_fingerprint(std::span<const JobSpec> jobs,
                                   double size_quantum) {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(jobs.size()));
  for (const JobSpec& job : jobs) f.mix(job_fingerprint(job, size_quantum));
  return f.value();
}

std::uint64_t topology_fingerprint(const ClusterConfig& cluster,
                                   std::span<const int> usable_racks) {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(cluster.racks));
  f.mix(static_cast<std::uint64_t>(cluster.machines_per_rack));
  f.mix(static_cast<std::uint64_t>(cluster.slots_per_machine));
  f.mix(cluster.nic_bandwidth);
  f.mix(cluster.oversubscription);
  f.mix(cluster.background_core_fraction);
  // Resource classes gate placement eligibility; mixed only when declared
  // so class-free topologies keep their pre-placement fingerprints.
  if (!cluster.resource_classes.empty()) {
    f.mix(static_cast<std::uint64_t>(cluster.resource_classes.size()));
    for (const ResourceClassConfig& cls : cluster.resource_classes) {
      f.mix(cls.name);
      f.mix(static_cast<std::uint64_t>(cls.units_per_rack));
      f.mix(static_cast<std::uint64_t>(cls.equipped_racks));
    }
  }
  if (usable_racks.empty()) {
    // Canonical form: every rack healthy.
    f.mix(static_cast<std::uint64_t>(cluster.racks));
    for (int r = 0; r < cluster.racks; ++r) {
      f.mix(static_cast<std::uint64_t>(r));
    }
    return f.value();
  }
  std::vector<int> sorted(usable_racks.begin(), usable_racks.end());
  std::sort(sorted.begin(), sorted.end());
  f.mix(static_cast<std::uint64_t>(sorted.size()));
  for (int r : sorted) f.mix(static_cast<std::uint64_t>(r));
  return f.value();
}

std::uint64_t planner_fingerprint(const PlannerConfig& config) {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(config.objective == Objective::kMakespan
                                       ? 0
                                       : 1));
  f.mix(static_cast<std::uint64_t>(config.widest_job_first ? 1 : 0));
  f.mix(static_cast<std::uint64_t>(config.explore_full_range ? 1 : 0));
  // Backend id: switching --planner must miss the plan cache (the cached
  // plan was produced by a different algorithm).
  f.mix(static_cast<std::uint64_t>(config.backend));
  return f.value();
}

std::uint64_t latency_params_fingerprint(const LatencyModelParams& params) {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(params.machines_per_rack));
  f.mix(static_cast<std::uint64_t>(params.slots_per_machine));
  f.mix(params.nic_bandwidth);
  f.mix(params.oversubscription);
  f.mix(params.alpha);
  return f.value();
}

}  // namespace corral
