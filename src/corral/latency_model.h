// Latency response functions (§4.3, §4.5).
//
// The planner predicts the latency L_j(r) of job j when allocated r racks.
// For a MapReduce stage the model is the sum of a map stage, a shuffle stage
// and a reduce stage; for a DAG it is the sum of stage latencies along the
// critical path. These functions are deliberately simple proxies: "we
// tradeoff accurate (absolute) latency values for simpler and practical
// planning algorithms" (§3.3).
#ifndef CORRAL_CORRAL_LATENCY_MODEL_H_
#define CORRAL_CORRAL_LATENCY_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "jobs/job.h"

namespace corral {

struct LatencyModelParams {
  int machines_per_rack = 30;   // k
  int slots_per_machine = 8;    // tasks running concurrently per machine
  BytesPerSec nic_bandwidth = 10 * kGbps;  // B
  double oversubscription = 5.0;           // V

  // Data-imbalance tradeoff coefficient (§4.5). The penalty added to L_j(r)
  // is alpha * D_I / r. The paper sets alpha to the inverse of the
  // rack-to-core bandwidth so the penalty approximates the time to upload
  // the job's input into a rack.
  double alpha = 0.0;

  static LatencyModelParams from_cluster(const ClusterConfig& config);

  // alpha = 1 / (rack uplink bandwidth), the paper's default (§4.5).
  double default_alpha() const;

  int tasks_per_rack() const { return machines_per_rack * slots_per_machine; }
};

// Latency of one MapReduce stage on r racks (§4.3), without the imbalance
// penalty. Breaks out the three phases for tests and diagnostics.
struct StageLatency {
  Seconds map = 0;
  Seconds shuffle = 0;
  Seconds reduce = 0;
  Seconds total() const { return map + shuffle + reduce; }
};

StageLatency stage_latency(const MapReduceSpec& stage, int racks,
                           const LatencyModelParams& params);

// Latency of a whole job on r racks: single stage for MapReduce, critical
// path over stages for DAGs (§4.3 "General DAGs"). No imbalance penalty.
Seconds job_latency(const JobSpec& job, int racks,
                    const LatencyModelParams& params);

// L'_j(r) = L_j(r) + alpha * D_I / r (§4.5).
Seconds job_latency_with_penalty(const JobSpec& job, int racks,
                                 const LatencyModelParams& params);

// Precomputed response function L'_j(r) for r = 1..max_racks, as used by the
// planner and the LP bounds.
class ResponseFunction {
 public:
  ResponseFunction(const JobSpec& job, int max_racks,
                   const LatencyModelParams& params);

  // For direct construction in tests and synthetic studies.
  ResponseFunction(std::vector<Seconds> latency_by_racks, Seconds arrival);

  int max_racks() const { return static_cast<int>(latency_.size()); }
  // r must be in [1, max_racks()].
  Seconds at(int racks) const;
  Seconds arrival() const { return arrival_; }
  Seconds min_latency() const;
  // Rack count attaining min_latency (smallest such r).
  int best_racks() const;

 private:
  std::vector<Seconds> latency_;  // latency_[r-1] = L'(r)
  Seconds arrival_ = 0;
};

// Builds response functions for a batch of jobs.
std::vector<ResponseFunction> build_response_functions(
    std::span<const JobSpec> jobs, int max_racks,
    const LatencyModelParams& params);

// Memoizes L'_j(r) envelopes across planning rounds (docs/control_plane.md).
//
// Recurring jobs re-enter the planner every epoch with near-identical
// predicted sizes; recomputing every response function from scratch is the
// bulk of a replan's model-evaluation cost. The cache keys each job by its
// semantic fingerprint (corral/fingerprint.h) with data sizes quantized
// into `size_quantum` relative buckets, so tonight's instance reuses the
// envelope computed for yesterday's near-identical instance. A hit returns
// the cached envelope re-stamped with the query job's arrival time; the
// latencies are those of the bucket representative (within ~size_quantum of
// exact — the same tolerance the plan cache accepts). Not thread-safe: one
// cache per control loop, queried from the calling thread only.
class ResponseFunctionCache {
 public:
  explicit ResponseFunctionCache(double size_quantum = 0.15);

  // The memoized equivalent of ResponseFunction(job, max_racks, params).
  ResponseFunction get(const JobSpec& job, int max_racks,
                       const LatencyModelParams& params);

  // Memoized build_response_functions.
  std::vector<ResponseFunction> get_all(std::span<const JobSpec> jobs,
                                        int max_racks,
                                        const LatencyModelParams& params);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }
  void clear();

  // Checkpoint support (src/ctrl/checkpoint): the memo's entries sorted by
  // key — a deterministic, restorable image of the cache. restore() replaces
  // the current contents and counters with the snapshot's.
  using Snapshot =
      std::vector<std::pair<std::uint64_t, std::vector<Seconds>>>;
  Snapshot snapshot() const;
  void restore(const Snapshot& entries, std::uint64_t hits,
               std::uint64_t misses);

 private:
  double size_quantum_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Seconds>> entries_;
};

}  // namespace corral

#endif  // CORRAL_CORRAL_LATENCY_MODEL_H_
