// Placement-constraint resolution (docs/coflow.md "Placement constraints").
//
// Jobs carry hard Shafiee–Ghaderi-style constraints (JobSpec::placement):
// anti-affinity sets, named per-rack resource classes, and rack
// exclusivity. The planner enforces them in two steps:
//
//  1. resolve_placements() turns each job's resource requirement into a
//     per-rack eligibility mask against the cluster's resource classes,
//     rejecting malformed or unsatisfiable requests with deterministic
//     errors before any search runs.
//  2. The provisioning search and every PlannerBackend treat the masks,
//     anti-affinity sets and exclusivity as feasibility filters when racks
//     are assigned (corral/planner.cpp run_prioritization).
//
// Resolution is a pure per-job function of (job, cluster) — cross-job
// interactions (disjointness, exclusivity) bind only at assignment time —
// so backends may resolve any job subset independently and stay consistent.
#ifndef CORRAL_CORRAL_PLACEMENT_H_
#define CORRAL_CORRAL_PLACEMENT_H_

#include <span>
#include <vector>

#include "cluster/topology.h"
#include "jobs/job.h"

namespace corral {

// One job's resolved constraint state. `eligible` has one entry per
// (virtual) rack of the planning cluster.
struct JobPlacement {
  std::vector<char> eligible;
  int eligible_count = 0;
  int anti_affinity = -1;
  bool rack_exclusive = false;
  bool constrained = false;
};

// Resolves every job against the cluster's resource classes. Throws
// std::invalid_argument (deterministic message naming the first offending
// job) when a placement spec is malformed, names an unknown resource class,
// requests more units than any equipped rack carries, or no rack is
// eligible.
std::vector<JobPlacement> resolve_placements(std::span<const JobSpec> jobs,
                                             const ClusterConfig& cluster);

// True when at least one job carries a real constraint (the planner's
// constraint-aware paths only engage then).
bool any_constrained(std::span<const JobSpec> jobs);
bool any_constrained(std::span<const JobPlacement> placements);

// Restricts resolved placements to the planning view `usable_racks` (sorted
// physical rack ids): virtual rack v of the view maps to physical rack
// usable_racks[v]. Used when planning on a degraded or arbitrated
// subcluster. Throws when a constrained job loses its last eligible rack.
std::vector<JobPlacement> remap_placements(
    std::span<const JobPlacement> placements, std::span<const JobSpec> jobs,
    std::span<const int> usable_racks);

}  // namespace corral

#endif  // CORRAL_CORRAL_PLACEMENT_H_
