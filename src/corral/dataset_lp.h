// Dataset-to-rack placement for shared datasets (§7 "Data-job
// dependencies").
//
// Corral's planner assumes each job reads its own dataset. When the
// relation between datasets and jobs is a bipartite graph (several jobs
// read the same dataset), the paper suggests: "This can be incorporated
// into Corral by using the schedule of the offline planner and formulating
// a simple LP with variables representing what fraction of each dataset is
// allocated to each rack and the cost function capturing the amount of
// cross-rack data transferred." This module is that LP, solved with the
// bundled simplex.
//
// Variables x_{d,r}: fraction of dataset d stored on rack r. A job j with
// assigned racks R_j reading dataset d fetches S_d * (1 - sum_{r in R_j}
// x_{d,r}) bytes across racks. Rack capacities keep the placement balanced.
#ifndef CORRAL_CORRAL_DATASET_LP_H_
#define CORRAL_CORRAL_DATASET_LP_H_

#include <string>
#include <vector>

#include "util/units.h"

namespace corral {

struct Dataset {
  std::string name;
  Bytes bytes = 0;
};

struct DatasetPlacementProblem {
  std::vector<Dataset> datasets;
  // reads[j] = indices of the datasets job j consumes.
  std::vector<std::vector<int>> reads;
  // job_racks[j] = the rack set R_j the offline planner assigned to job j.
  std::vector<std::vector<int>> job_racks;
  int num_racks = 1;
  // Every rack may hold at most (1 + balance_slack) * (total bytes / racks);
  // 0 forces perfect balance, larger values trade balance for locality.
  double balance_slack = 0.25;
};

struct DatasetPlacementResult {
  bool optimal = false;
  // fraction[d][r]: share of dataset d placed on rack r (rows sum to 1).
  std::vector<std::vector<double>> fraction;
  // Objective value: total bytes jobs must read across racks.
  Bytes expected_cross_rack_bytes = 0;
};

// Solves the placement LP. Throws std::invalid_argument on malformed input
// (index out of range, negative sizes, mismatched vector lengths).
DatasetPlacementResult place_datasets(const DatasetPlacementProblem& problem);

}  // namespace corral

#endif  // CORRAL_CORRAL_DATASET_LP_H_
