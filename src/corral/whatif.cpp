#include "corral/whatif.h"
#include <algorithm>

#include "corral/lp_bound.h"
#include "exec/exec.h"
#include "util/check.h"

namespace corral {
namespace {

// One parallel pass over a list of rack counts. Each assessment is an
// independent planning problem; the inner planner/LP parallelism collapses
// to inline execution when the assessments themselves run on pool workers,
// so nesting is safe and the per-count results are identical either way.
std::vector<DeadlineAssessment> assess_counts(
    std::span<const JobSpec> jobs, const ClusterConfig& cluster,
    Seconds deadline, const std::vector<int>& rack_counts,
    exec::ThreadPool& pool) {
  return exec::parallel_map(
      pool, rack_counts.size(), [&](int, std::size_t i) {
        ClusterConfig sized = cluster;
        sized.racks = rack_counts[i];
        return assess_deadline(jobs, sized, deadline, &pool);
      });
}

}  // namespace

DeadlineAssessment assess_deadline(std::span<const JobSpec> jobs,
                                   const ClusterConfig& cluster,
                                   Seconds deadline, exec::ThreadPool* pool) {
  require(deadline > 0, "assess_deadline: deadline must be positive");
  DeadlineAssessment assessment;
  assessment.racks = cluster.racks;

  const LatencyModelParams params = LatencyModelParams::from_cluster(cluster);
  const auto functions =
      build_response_functions(jobs, cluster.racks, params);
  PlannerConfig config;
  config.objective = Objective::kMakespan;
  config.pool = pool;
  const Plan plan = plan_offline(functions, cluster.racks, config);
  assessment.planned_makespan = plan.predicted_makespan;
  assessment.lower_bound =
      lp_batch_makespan_bound(functions, cluster.racks, pool);

  if (assessment.planned_makespan <= deadline) {
    assessment.verdict = DeadlineVerdict::kFits;
  } else if (assessment.lower_bound <= deadline) {
    assessment.verdict = DeadlineVerdict::kAtRisk;
  } else {
    assessment.verdict = DeadlineVerdict::kImpossible;
  }
  return assessment;
}

CapacityPlan plan_capacity(std::span<const JobSpec> jobs,
                           const ClusterConfig& cluster, Seconds deadline,
                           int max_racks, exec::ThreadPool* pool) {
  require(max_racks >= 1, "plan_capacity: max_racks must be >= 1");
  require(deadline > 0, "plan_capacity: deadline must be positive");
  exec::ThreadPool& exec_pool =
      pool != nullptr ? *pool : exec::ThreadPool::shared();

  CapacityPlan result;
  // Doubling sweep to bracket the transition, then linear refinement: the
  // planned makespan is (weakly) improved by more racks in practice but is
  // not guaranteed monotone, so the final answer re-checks each count in
  // the refined range. Each sweep evaluates its rack counts in parallel and
  // reduces the verdicts in rack-count order.
  int lo = 1;
  int hi = max_racks;
  std::vector<int> candidates;
  for (int r = 1; r <= max_racks; r *= 2) candidates.push_back(r);
  if (candidates.back() != max_racks) candidates.push_back(max_racks);

  result.sweep = assess_counts(jobs, cluster, deadline, candidates, exec_pool);
  for (const DeadlineAssessment& assessment : result.sweep) {
    if (assessment.verdict == DeadlineVerdict::kFits) {
      hi = std::min(hi, assessment.racks);
    } else {
      lo = std::max(lo, assessment.racks + 1);
    }
  }

  // Linear refinement inside [lo, hi].
  std::vector<int> refine;
  for (int r = lo; r <= hi; ++r) {
    const bool already = std::any_of(
        result.sweep.begin(), result.sweep.end(),
        [r](const DeadlineAssessment& a) { return a.racks == r; });
    if (!already) refine.push_back(r);
  }
  const std::vector<DeadlineAssessment> refined =
      assess_counts(jobs, cluster, deadline, refine, exec_pool);
  result.sweep.insert(result.sweep.end(), refined.begin(), refined.end());
  std::sort(result.sweep.begin(), result.sweep.end(),
            [](const DeadlineAssessment& a, const DeadlineAssessment& b) {
              return a.racks < b.racks;
            });

  for (const DeadlineAssessment& assessment : result.sweep) {
    if (result.certified_floor < 0 &&
        assessment.verdict != DeadlineVerdict::kImpossible) {
      result.certified_floor = assessment.racks;
    }
    if (result.racks_needed < 0 &&
        assessment.verdict == DeadlineVerdict::kFits) {
      result.racks_needed = assessment.racks;
    }
  }
  return result;
}

}  // namespace corral
