#include "corral/whatif.h"
#include <algorithm>

#include "corral/lp_bound.h"
#include "util/check.h"

namespace corral {

DeadlineAssessment assess_deadline(std::span<const JobSpec> jobs,
                                   const ClusterConfig& cluster,
                                   Seconds deadline) {
  require(deadline > 0, "assess_deadline: deadline must be positive");
  DeadlineAssessment assessment;
  assessment.racks = cluster.racks;

  const LatencyModelParams params = LatencyModelParams::from_cluster(cluster);
  const auto functions =
      build_response_functions(jobs, cluster.racks, params);
  PlannerConfig config;
  config.objective = Objective::kMakespan;
  const Plan plan = plan_offline(functions, cluster.racks, config);
  assessment.planned_makespan = plan.predicted_makespan;
  assessment.lower_bound = lp_batch_makespan_bound(functions, cluster.racks);

  if (assessment.planned_makespan <= deadline) {
    assessment.verdict = DeadlineVerdict::kFits;
  } else if (assessment.lower_bound <= deadline) {
    assessment.verdict = DeadlineVerdict::kAtRisk;
  } else {
    assessment.verdict = DeadlineVerdict::kImpossible;
  }
  return assessment;
}

CapacityPlan plan_capacity(std::span<const JobSpec> jobs,
                           const ClusterConfig& cluster, Seconds deadline,
                           int max_racks) {
  require(max_racks >= 1, "plan_capacity: max_racks must be >= 1");
  require(deadline > 0, "plan_capacity: deadline must be positive");

  CapacityPlan result;
  // Doubling sweep to bracket the transition, then linear refinement: the
  // planned makespan is (weakly) improved by more racks in practice but is
  // not guaranteed monotone, so the final answer re-checks each count in
  // the refined range.
  int lo = 1;
  int hi = max_racks;
  std::vector<int> candidates;
  for (int r = 1; r <= max_racks; r *= 2) candidates.push_back(r);
  if (candidates.back() != max_racks) candidates.push_back(max_racks);

  for (int r : candidates) {
    ClusterConfig sized = cluster;
    sized.racks = r;
    const DeadlineAssessment assessment =
        assess_deadline(jobs, sized, deadline);
    result.sweep.push_back(assessment);
    if (assessment.verdict == DeadlineVerdict::kFits) {
      hi = std::min(hi, r);
    } else {
      lo = std::max(lo, r + 1);
    }
  }

  // Linear refinement inside [lo, hi].
  for (int r = lo; r <= hi; ++r) {
    const bool already = std::any_of(
        result.sweep.begin(), result.sweep.end(),
        [r](const DeadlineAssessment& a) { return a.racks == r; });
    if (already) continue;
    ClusterConfig sized = cluster;
    sized.racks = r;
    result.sweep.push_back(assess_deadline(jobs, sized, deadline));
  }
  std::sort(result.sweep.begin(), result.sweep.end(),
            [](const DeadlineAssessment& a, const DeadlineAssessment& b) {
              return a.racks < b.racks;
            });

  for (const DeadlineAssessment& assessment : result.sweep) {
    if (result.certified_floor < 0 &&
        assessment.verdict != DeadlineVerdict::kImpossible) {
      result.certified_floor = assessment.racks;
    }
    if (result.racks_needed < 0 &&
        assessment.verdict == DeadlineVerdict::kFits) {
      result.racks_needed = assessment.racks;
    }
  }
  return result;
}

}  // namespace corral
