#include "corral/latency_model.h"

#include <algorithm>
#include <cmath>

#include "corral/fingerprint.h"
#include "jobs/dag.h"
#include "util/check.h"

namespace corral {

LatencyModelParams LatencyModelParams::from_cluster(
    const ClusterConfig& config) {
  LatencyModelParams params;
  params.machines_per_rack = config.machines_per_rack;
  params.slots_per_machine = config.slots_per_machine;
  params.nic_bandwidth = config.nic_bandwidth;
  params.oversubscription = config.oversubscription;
  params.alpha = params.default_alpha();
  return params;
}

double LatencyModelParams::default_alpha() const {
  const BytesPerSec uplink =
      machines_per_rack * nic_bandwidth / oversubscription;
  return 1.0 / uplink;
}

StageLatency stage_latency(const MapReduceSpec& stage, int racks,
                           const LatencyModelParams& params) {
  require(racks >= 1, "stage_latency: racks must be >= 1");
  require(params.machines_per_rack >= 1 && params.slots_per_machine >= 1,
          "stage_latency: invalid model params");
  require(params.oversubscription >= 1.0,
          "stage_latency: oversubscription must be >= 1");
  stage.validate();

  const double r = racks;
  const double k = params.machines_per_rack;
  const double slots = r * k * params.slots_per_machine;
  const double B = params.nic_bandwidth;
  const double V = params.oversubscription;

  StageLatency out;

  // Map stage: w_map waves, each processing one task's input at B_M.
  const double map_waves = std::ceil(stage.num_maps / slots);
  out.map = map_waves * (stage.input_bytes / stage.num_maps) / stage.map_rate;

  if (stage.num_reduces == 0 || stage.shuffle_bytes <= 0) {
    // Map-only stage (e.g., an extract with no aggregation).
    if (stage.num_reduces > 0) {
      const double reduce_waves = std::ceil(stage.num_reduces / slots);
      out.reduce = reduce_waves * (stage.output_bytes / stage.num_reduces) /
                   stage.reduce_rate;
    }
    return out;
  }

  const double reduce_waves = std::ceil(stage.num_reduces / slots);

  // Shuffle (§4.3). D_core is the shuffle data a single machine sends
  // across the core over the whole shuffle; dividing by the per-machine
  // core share B/V gives the cross-core time. D_local is the per-machine
  // data that stays within the rack, moved at the residual NIC bandwidth
  // B - B/V. We evaluate both on a per-wave basis and multiply by the wave
  // count, which is equivalent to using the whole-shuffle totals (each wave
  // moves 1/w of the data); this avoids double-counting the wave factor.
  if (racks > 1) {
    const double core_per_machine =
        stage.shuffle_bytes / (r * k) * (r - 1.0) / r;
    const double local_per_machine = stage.shuffle_bytes / (r * k) / r;
    const Seconds core_time = core_per_machine / (B / V);
    const Seconds local_time =
        local_per_machine * ((k - 1.0) / k) / (B - B / V);
    out.shuffle = std::max(core_time, local_time);
  } else {
    // Single rack: no data crosses the core; everything moves inside the
    // rack at full NIC speed.
    const double local_per_machine = stage.shuffle_bytes / k;
    out.shuffle = local_per_machine * ((k - 1.0) / k) / B;
  }

  // Reduce stage: w_reduce waves, each processing one task's output at B_R.
  out.reduce = reduce_waves * (stage.output_bytes / stage.num_reduces) /
               stage.reduce_rate;
  return out;
}

Seconds job_latency(const JobSpec& job, int racks,
                    const LatencyModelParams& params) {
  require(!job.stages.empty(), "job_latency: job has no stages");
  if (job.is_map_reduce()) {
    return stage_latency(job.stages.front(), racks, params).total();
  }
  std::vector<double> weights;
  weights.reserve(job.stages.size());
  for (const MapReduceSpec& stage : job.stages) {
    weights.push_back(stage_latency(stage, racks, params).total());
  }
  return critical_path(static_cast<int>(job.stages.size()), job.edges,
                       weights)
      .length;
}

Seconds job_latency_with_penalty(const JobSpec& job, int racks,
                                 const LatencyModelParams& params) {
  return job_latency(job, racks, params) +
         params.alpha * job.total_input() / racks;
}

ResponseFunction::ResponseFunction(const JobSpec& job, int max_racks,
                                   const LatencyModelParams& params)
    : arrival_(job.arrival) {
  require(max_racks >= 1, "ResponseFunction: max_racks must be >= 1");
  latency_.reserve(static_cast<std::size_t>(max_racks));
  for (int r = 1; r <= max_racks; ++r) {
    latency_.push_back(job_latency_with_penalty(job, r, params));
  }
}

ResponseFunction::ResponseFunction(std::vector<Seconds> latency_by_racks,
                                   Seconds arrival)
    : latency_(std::move(latency_by_racks)), arrival_(arrival) {
  require(!latency_.empty(), "ResponseFunction: empty latency vector");
  for (Seconds l : latency_) {
    require(l >= 0, "ResponseFunction: negative latency");
  }
}

Seconds ResponseFunction::at(int racks) const {
  require(racks >= 1 && racks <= max_racks(),
          "ResponseFunction::at: racks out of range");
  return latency_[static_cast<std::size_t>(racks - 1)];
}

Seconds ResponseFunction::min_latency() const {
  return *std::min_element(latency_.begin(), latency_.end());
}

int ResponseFunction::best_racks() const {
  const auto it = std::min_element(latency_.begin(), latency_.end());
  return static_cast<int>(it - latency_.begin()) + 1;
}

std::vector<ResponseFunction> build_response_functions(
    std::span<const JobSpec> jobs, int max_racks,
    const LatencyModelParams& params) {
  std::vector<ResponseFunction> out;
  out.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    out.emplace_back(job, max_racks, params);
  }
  return out;
}

ResponseFunctionCache::ResponseFunctionCache(double size_quantum)
    : size_quantum_(size_quantum) {
  require(size_quantum > 0,
          "ResponseFunctionCache: size_quantum must be positive");
}

ResponseFunction ResponseFunctionCache::get(const JobSpec& job, int max_racks,
                                            const LatencyModelParams& params) {
  require(max_racks >= 1, "ResponseFunctionCache: max_racks must be >= 1");
  Fingerprint key;
  key.mix(job_fingerprint(job, size_quantum_));
  key.mix(static_cast<std::uint64_t>(max_racks));
  key.mix(latency_params_fingerprint(params));
  const auto it = entries_.find(key.value());
  if (it != entries_.end()) {
    ++hits_;
    return ResponseFunction(it->second, job.arrival);
  }
  ++misses_;
  const ResponseFunction built(job, max_racks, params);
  std::vector<Seconds> latencies;
  latencies.reserve(static_cast<std::size_t>(max_racks));
  for (int r = 1; r <= max_racks; ++r) latencies.push_back(built.at(r));
  entries_.emplace(key.value(), std::move(latencies));
  return built;
}

std::vector<ResponseFunction> ResponseFunctionCache::get_all(
    std::span<const JobSpec> jobs, int max_racks,
    const LatencyModelParams& params) {
  std::vector<ResponseFunction> out;
  out.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    out.push_back(get(job, max_racks, params));
  }
  return out;
}

void ResponseFunctionCache::clear() { entries_.clear(); }

ResponseFunctionCache::Snapshot ResponseFunctionCache::snapshot() const {
  Snapshot out(entries_.begin(), entries_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void ResponseFunctionCache::restore(const Snapshot& entries,
                                    std::uint64_t hits, std::uint64_t misses) {
  entries_.clear();
  for (const auto& [key, latencies] : entries) {
    entries_.emplace(key, latencies);
  }
  hits_ = hits;
  misses_ = misses;
}

}  // namespace corral
