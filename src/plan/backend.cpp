#include "plan/backend.h"

#include "util/check.h"

namespace corral::plan {

std::string_view CorralBackend::name() const { return "corral"; }

ProvisionPlan CorralBackend::plan(const PlannerRequest& request) const {
  require(request.config != nullptr, "CorralBackend: config is required");
  ProvisionPlan result;
  result.backend = PlannerBackendKind::kCorral;
  result.plan =
      plan_offline(request.jobs, request.num_racks, *request.config);
  return result;
}

const PlannerBackend& planner_backend(PlannerBackendKind kind) {
  static const CorralBackend corral;
  static const DagPackBackend dagpack;
  static const LpRoundBackend lpround;
  switch (kind) {
    case PlannerBackendKind::kCorral:
      return corral;
    case PlannerBackendKind::kDagPack:
      return dagpack;
    case PlannerBackendKind::kLpRound:
      return lpround;
  }
  require(false, "planner_backend: unknown backend kind");
  return corral;  // unreachable
}

std::string_view to_string(PlannerBackendKind kind) {
  return planner_backend(kind).name();
}

bool parse_planner_backend(std::string_view name, PlannerBackendKind* out) {
  for (const PlannerBackendKind kind :
       {PlannerBackendKind::kCorral, PlannerBackendKind::kDagPack,
        PlannerBackendKind::kLpRound}) {
    if (name == planner_backend(kind).name()) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<std::string> planner_backend_names() {
  return {"corral", "dagpack", "lpround"};
}

}  // namespace corral::plan
