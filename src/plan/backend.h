// Pluggable planner backends (docs/planners.md).
//
// Corral's two-phase heuristic (§4.2) is one point in a design space the
// related work maps out: DAGPS packs the "troublesome" part of each DAG
// first (Grandl et al.), and Murray–Khuller–Chao round LP relaxations into
// schedules with approximation guarantees. This layer puts those behind one
// interface so the control plane, the CLI tools and the benches can swap
// planning algorithms with a flag: every backend consumes the same request
// (response functions, optional job specs, rack count, PlannerConfig) and
// produces a ProvisionPlan — a corral::Plan plus the backend id, an optional
// LP lower bound, and the deterministic candidate-evaluation count the
// control plane already uses as its replan-cost metric.
//
// Backends must be deterministic at any exec::ThreadPool width: a plan is
// byte-identical for --threads 1/2/8 (the repo-wide contract, DESIGN.md
// "Execution engine").
#ifndef CORRAL_PLAN_BACKEND_H_
#define CORRAL_PLAN_BACKEND_H_

#include <span>
#include <string_view>
#include <vector>

#include "corral/latency_model.h"
#include "corral/planner.h"
#include "jobs/job.h"

namespace corral::plan {

// One planning request. `jobs` are the latency envelopes the planner
// searches over; `specs` (optional — empty or one entry per job, same
// order) lets DAG-aware backends inspect stage structure and network
// volumes. `config` carries objective, ablations, pool and tracing exactly
// as for plan_offline.
struct PlannerRequest {
  std::span<const ResponseFunction> jobs;
  std::span<const JobSpec> specs;  // may be empty
  int num_racks = 1;
  const PlannerConfig* config = nullptr;
};

struct ProvisionPlan {
  Plan plan;
  PlannerBackendKind backend = PlannerBackendKind::kCorral;
  // LP lower bound on the configured objective, when the backend computes
  // one (LpRoundBackend); 0 otherwise. Lets callers report plan quality
  // against the bound instead of against another heuristic.
  Seconds lp_bound = 0;
};

class PlannerBackend {
 public:
  virtual ~PlannerBackend() = default;
  virtual std::string_view name() const = 0;
  virtual ProvisionPlan plan(const PlannerRequest& request) const = 0;
};

// The paper's two-phase heuristic behind the interface: delegates to
// plan_offline, zero behavior change (golden tests pin byte-identical
// plans).
class CorralBackend : public PlannerBackend {
 public:
  std::string_view name() const override;
  ProvisionPlan plan(const PlannerRequest& request) const override;
};

// DAGPS-style: scores each job's stage DAG (chain length, network volume,
// envelope curvature), runs the full Corral search on the troublesome
// subset only, then places the residual greedily one job at a time.
class DagPackBackend : public PlannerBackend {
 public:
  std::string_view name() const override;
  ProvisionPlan plan(const PlannerRequest& request) const override;
};

// LP rounding: binary-searches the smallest feasible makespan budget of the
// Appendix-A relaxation by solving the per-job LPs with src/lp/simplex,
// rounds each job's fractional rack assignment by largest fractional share
// (deterministic tie-breaks), and reports the LP value as lp_bound.
class LpRoundBackend : public PlannerBackend {
 public:
  std::string_view name() const override;
  ProvisionPlan plan(const PlannerRequest& request) const override;
};

// Registry: the process-wide backend instances (stateless, safe to share).
const PlannerBackend& planner_backend(PlannerBackendKind kind);

// Flag-value names, in registry order: {"corral", "dagpack", "lpround"}.
std::string_view to_string(PlannerBackendKind kind);
bool parse_planner_backend(std::string_view name, PlannerBackendKind* out);
std::vector<std::string> planner_backend_names();

}  // namespace corral::plan

#endif  // CORRAL_PLAN_BACKEND_H_
