// LP rounding: turn the Appendix-A relaxation into a plan.
//
// LP-Batch lower-bounds the makespan of any rack-granular schedule. For a
// fixed budget T it decomposes per job into a tiny LP over the fractional
// rack assignment x_r (r = 1..R):
//
//   minimize   sum_r r * L_j(r) * x_r        (work the job consumes)
//   subject to sum_r x_r = 1,  sum_r L_j(r) * x_r <= T,  x >= 0
//
// and T is feasible when the summed minimal work fits the cluster's
// capacity T * R. This backend binary-searches the smallest feasible T*
// (the LP bound, identical to lp_batch_makespan_bound up to the search
// tolerance), then rounds: each job's optimal basic solution has at most
// two nonzero x_r (the LP has two rows), so the largest fractional share is
// >= 1/2 — picking that width r_j gives L_j(r_j) <= 2 T* and work
// r_j L_j(r_j) <= 2 * (fractional work). Widest-first LPT prioritization
// over those widths then yields a makespan within a small constant of T*
// (<= 4x on batch instances: 2x from rounding, 2x from list scheduling;
// bench_planner_bakeoff checks the certificate on every TPC-H instance).
// Murray, Khuller and Chao develop this primal-dual/rounding family for
// distributed-cluster scheduling; this is its rack-granular cousin.
//
// Determinism: per-job LPs solve in parallel on the configured pool but
// reduce in job order; the simplex pivot sequence is a pure function of the
// problem, so T*, the rounding and the iteration counts are byte-identical
// at any --threads width. Ties in the largest-share pick break toward the
// smallest width.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "exec/exec.h"
#include "lp/simplex.h"
#include "obs/trace.h"
#include "plan/backend.h"
#include "util/check.h"

namespace corral::plan {
namespace {

struct JobLpResult {
  double work = 0.0;          // LP objective: minimal work under budget T
  std::vector<double> x;      // fractional rack assignment, x[r-1]
  int iterations = 0;         // simplex pivots
  bool feasible = true;
};

// Solves one job's two-row LP at latency budget T.
JobLpResult solve_job_lp(const ResponseFunction& job, int num_racks,
                         double budget) {
  LpProblem lp(num_racks);
  std::vector<double> objective(static_cast<std::size_t>(num_racks));
  std::vector<double> ones(static_cast<std::size_t>(num_racks), 1.0);
  std::vector<double> latency(static_cast<std::size_t>(num_racks));
  for (int r = 1; r <= num_racks; ++r) {
    const double l = job.at(r);
    latency[static_cast<std::size_t>(r) - 1] = l;
    objective[static_cast<std::size_t>(r) - 1] = static_cast<double>(r) * l;
  }
  lp.minimize(std::move(objective));
  lp.add_constraint(std::move(ones), Relation::kEqual, 1.0);
  lp.add_constraint(std::move(latency), Relation::kLessEqual, budget);
  const LpSolution solution = lp.solve();
  JobLpResult result;
  result.iterations = solution.iterations;
  if (!solution.optimal()) {
    result.feasible = false;
    return result;
  }
  result.work = solution.objective;
  result.x = solution.x;
  return result;
}

}  // namespace

std::string_view LpRoundBackend::name() const { return "lpround"; }

ProvisionPlan LpRoundBackend::plan(const PlannerRequest& request) const {
  require(request.config != nullptr, "LpRoundBackend: config is required");
  const PlannerConfig& config = *request.config;
  const int R = request.num_racks;
  require(R >= 1, "LpRoundBackend: num_racks must be >= 1");
  const std::size_t J = request.jobs.size();
  for (const ResponseFunction& f : request.jobs) {
    require(f.max_racks() >= R,
            "LpRoundBackend: response function does not cover the racks");
  }

  ProvisionPlan result;
  result.backend = PlannerBackendKind::kLpRound;
  if (J == 0) return result;

  exec::ThreadPool& pool =
      config.pool != nullptr ? *config.pool : exec::ThreadPool::shared();
  const obs::TraceRecorder trace(config.tracer, config.trace_sink, "planner");
  const auto trace_begin = std::chrono::steady_clock::now();
  const auto clock_at = [&](double step) {
    if (!trace.wall_clock()) return step;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         trace_begin)
        .count();
  };

  std::size_t total_iterations = 0;
  // Solves every job's LP at budget T in parallel, reducing work and pivot
  // counts in job order.
  const auto sweep = [&](double budget) {
    std::vector<JobLpResult> results = exec::parallel_map(
        pool, J, [&](int, std::size_t j) {
          return solve_job_lp(request.jobs[j], R, budget);
        });
    double total_work = 0.0;
    bool feasible = true;
    for (const JobLpResult& r : results) {
      total_iterations += static_cast<std::size_t>(r.iterations);
      total_work += r.work;
      feasible = feasible && r.feasible;
    }
    return std::tuple(feasible, total_work, std::move(results));
  };

  // Search window: T* is at least the widest job's best latency and at
  // least the aggregate minimal work spread over R racks.
  double lo = 0.0;
  double total_min_work = 0.0;
  for (const ResponseFunction& job : request.jobs) {
    lo = std::max(lo, job.min_latency());
    double min_work = job.at(1);
    for (int r = 2; r <= R; ++r) {
      min_work = std::min(min_work, static_cast<double>(r) * job.at(r));
    }
    total_min_work += min_work;
  }
  lo = std::max(lo, total_min_work / static_cast<double>(R));

  double step = 0.0;
  const auto is_feasible = [&](double budget) {
    auto [feasible, total_work, results] = sweep(budget);
    (void)results;
    if (trace.at(obs::TraceLevel::kTasks)) {
      trace.instant(obs::TraceTrack::kPlanner, "bisect", "planner", 0,
                    clock_at(step),
                    {obs::arg("budget_s", budget),
                     obs::arg("total_work", total_work),
                     obs::arg("feasible", feasible &&
                                      total_work <=
                                          budget * R * (1.0 + 1e-12)
                                  ? 1.0
                                  : 0.0)});
    }
    step += 1.0;
    return feasible && total_work <= budget * R * (1.0 + 1e-12);
  };

  double hi = lo;
  for (int doubling = 0; !is_feasible(hi) && doubling < 64; ++doubling) {
    lo = hi;
    hi = hi == 0.0 ? 1.0 : hi * 2.0;
  }
  for (int iter = 0; iter < 100 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (is_feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double bound = hi;
  result.lp_bound = bound;

  // Final fractional solution at T*, rounded by largest fractional share
  // (ties toward the smallest width). Placement constraints cap the
  // rounding at each job's eligible rack count; the prioritize() call below
  // then enforces rack-level feasibility through config.placements.
  auto [feasible, total_work, finals] = sweep(bound);
  ensure(feasible, "LpRoundBackend: final LP sweep infeasible at the bound");
  (void)total_work;
  if (config.placements != nullptr) {
    require(config.placements->size() == J,
            "LpRoundBackend: placements must cover every job");
  }
  std::vector<int> racks_per_job(J, 1);
  for (std::size_t j = 0; j < J; ++j) {
    const std::vector<double>& x = finals[j].x;
    int max_r = R;
    if (config.placements != nullptr) {
      max_r = std::min(R, (*config.placements)[j].eligible_count);
    }
    int best_r = 1;
    double best_share = -1.0;
    for (int r = 1; r <= max_r; ++r) {
      const double share = x[static_cast<std::size_t>(r) - 1];
      if (share > best_share + 1e-12) {
        best_share = share;
        best_r = r;
      }
    }
    racks_per_job[j] = best_r;
  }

  result.plan = prioritize(request.jobs, racks_per_job, R, config);
  result.plan.evaluated_candidates = total_iterations + 1;
  if (trace.at(obs::TraceLevel::kJobs)) {
    trace.span(obs::TraceTrack::kPlanner, "lpround", "planner", 0,
               clock_at(0.0), clock_at(step),
               {obs::arg("jobs", static_cast<double>(J)),
                obs::arg("lp_bound_s", bound),
                obs::arg("simplex_iterations",
                         static_cast<double>(total_iterations)),
                obs::arg("predicted_makespan_s",
                         result.plan.predicted_makespan)});
  }
  return result;
}

}  // namespace corral::plan
