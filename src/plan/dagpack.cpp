// DAGPS-style planning: do the hard part first.
//
// Grandl et al. observe that DAG schedules degrade when the "troublesome"
// part of the graph — long chains and network-heavy stages that cannot
// overlap with anything — is placed last, after the easy work has fragmented
// the cluster. This backend applies the idea at Corral's rack granularity:
//
//  1. Score every job by how troublesome it is. With job specs available the
//     score combines the serial chain fraction (critical-path stages over
//     total stages) and the network volume fraction (shuffle bytes over
//     total bytes); with envelopes only it falls back to the curvature of
//     L_j(r) (a job whose latency barely improves with racks is a serial
//     chain in disguise). Either way the score is weighted by L_j(1) so big
//     jobs dominate.
//  2. Run the full Corral §4.2 search on the troublesome subset only
//     (score >= mean). The expensive J*R provisioning search is spent where
//     placement quality matters.
//  3. Place the residual jobs greedily, one at a time in (arrival, score
//     desc, index) order, evaluating every width r in [1, R] against the
//     rack availability the troublesome plan left behind and keeping the
//     earliest completion (ties: narrowest width, then lowest rack ids).
//
// Placement constraints (corral/placement.h) thread through both steps:
// the packed search sees the troublesome subset's placements (resolution
// is per-job, so slicing is sound), and the residual greedy filters each
// job's candidate racks by eligibility, anti-affinity and exclusivity —
// including the racks the packed plan already claimed.
//
// The search in step 2 runs on the configured pool (byte-identical at any
// width, like plan_offline); steps 1 and 3 are serial scans, so the whole
// plan is deterministic at any --threads value.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "jobs/dag.h"
#include "obs/trace.h"
#include "plan/backend.h"
#include "util/check.h"

namespace corral::plan {
namespace {

std::string rack_list_string(const std::vector<int>& racks) {
  std::string out;
  for (std::size_t i = 0; i < racks.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(racks[i]);
  }
  return out;
}

// How troublesome is this job? Always >= L_j(1), at most 3 * L_j(1).
double troublesome_score(const ResponseFunction& job, const JobSpec* spec,
                         int num_racks) {
  const double base = job.at(1);
  if (spec != nullptr && !spec->stages.empty()) {
    const auto num_stages = static_cast<int>(spec->stages.size());
    std::vector<double> weights(spec->stages.size());
    for (std::size_t s = 0; s < spec->stages.size(); ++s) {
      const MapReduceSpec& stage = spec->stages[s];
      weights[s] = static_cast<double>(stage.input_bytes) +
                   static_cast<double>(stage.shuffle_bytes) +
                   static_cast<double>(stage.output_bytes);
    }
    const CriticalPath cp = critical_path(num_stages, spec->edges, weights);
    const double chain_frac =
        static_cast<double>(cp.nodes.size()) / num_stages;
    const double total_bytes = static_cast<double>(spec->total_input()) +
                               static_cast<double>(spec->total_shuffle()) +
                               static_cast<double>(spec->total_output());
    const double net_frac =
        total_bytes > 0
            ? static_cast<double>(spec->total_shuffle()) / total_bytes
            : 0.0;
    return base * (1.0 + chain_frac + net_frac);
  }
  // Envelope curvature: r * L(r) / L(1) is 1 for a perfectly parallel job
  // and r for a fully serial one.
  if (num_racks <= 1) return base;
  const double ratio = job.at(num_racks) * num_racks / base;
  const double serial_frac =
      std::clamp((ratio - 1.0) / (num_racks - 1.0), 0.0, 1.0);
  return base * (1.0 + 2.0 * serial_frac);
}

}  // namespace

std::string_view DagPackBackend::name() const { return "dagpack"; }

ProvisionPlan DagPackBackend::plan(const PlannerRequest& request) const {
  require(request.config != nullptr, "DagPackBackend: config is required");
  require(request.specs.empty() || request.specs.size() == request.jobs.size(),
          "DagPackBackend: specs must be empty or one per job");
  const PlannerConfig& config = *request.config;
  const int R = request.num_racks;
  require(R >= 1, "DagPackBackend: num_racks must be >= 1");
  const std::size_t J = request.jobs.size();
  for (const ResponseFunction& f : request.jobs) {
    require(f.max_racks() >= R,
            "DagPackBackend: response function does not cover the racks");
  }

  ProvisionPlan result;
  result.backend = PlannerBackendKind::kDagPack;
  if (J == 0) return result;

  const obs::TraceRecorder trace(config.tracer, config.trace_sink, "planner");
  const auto trace_begin = std::chrono::steady_clock::now();
  const auto clock_at = [&](double step) {
    if (!trace.wall_clock()) return step;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         trace_begin)
        .count();
  };

  // Step 1: scores and the troublesome split. max >= mean, so the
  // troublesome set is never empty; when every score ties the backend
  // degenerates to the plain Corral search over all jobs.
  std::vector<double> score(J);
  for (std::size_t j = 0; j < J; ++j) {
    score[j] = troublesome_score(
        request.jobs[j], request.specs.empty() ? nullptr : &request.specs[j],
        R);
  }
  const double mean_score =
      std::accumulate(score.begin(), score.end(), 0.0) /
      static_cast<double>(J);
  std::vector<int> trouble_idx;
  std::vector<int> residual_idx;
  for (std::size_t j = 0; j < J; ++j) {
    if (score[j] >= mean_score) {
      trouble_idx.push_back(static_cast<int>(j));
    } else {
      residual_idx.push_back(static_cast<int>(j));
    }
  }

  // Step 2: the full two-phase search over the troublesome subset. When
  // placement constraints apply, the subset's placements are sliced out for
  // the packed search (resolution is per-job, so the slice stays valid).
  const std::vector<JobPlacement>* placements = config.placements;
  const bool constrained =
      placements != nullptr && any_constrained(*placements);
  if (placements != nullptr) {
    require(placements->size() == J,
            "DagPackBackend: placements must cover every job");
  }
  std::vector<ResponseFunction> trouble;
  trouble.reserve(trouble_idx.size());
  for (int j : trouble_idx) {
    trouble.push_back(request.jobs[static_cast<std::size_t>(j)]);
  }
  PlannerConfig trouble_config = config;
  std::vector<JobPlacement> trouble_placements;
  if (placements != nullptr) {
    trouble_placements.reserve(trouble_idx.size());
    for (int j : trouble_idx) {
      trouble_placements.push_back((*placements)[static_cast<std::size_t>(j)]);
    }
    trouble_config.placements = &trouble_placements;
  }
  const Plan packed = plan_offline(trouble, R, trouble_config);

  // Cross-job constraint state the packed plan leaves behind, rebuilt from
  // its rack assignments so the residual greedy honors it.
  std::vector<int> set_ids;
  std::vector<char> set_rack;
  std::vector<char> rack_used;
  std::vector<char> exclusive_rack;
  const auto set_index_of = [&](const JobPlacement& pl) {
    if (pl.anti_affinity < 0) return -1;
    return static_cast<int>(
        std::lower_bound(set_ids.begin(), set_ids.end(), pl.anti_affinity) -
        set_ids.begin());
  };
  if (constrained) {
    for (const JobPlacement& p : *placements) {
      if (p.anti_affinity >= 0) set_ids.push_back(p.anti_affinity);
    }
    std::sort(set_ids.begin(), set_ids.end());
    set_ids.erase(std::unique(set_ids.begin(), set_ids.end()), set_ids.end());
    set_rack.assign(set_ids.size() * static_cast<std::size_t>(R), 0);
    rack_used.assign(static_cast<std::size_t>(R), 0);
    exclusive_rack.assign(static_cast<std::size_t>(R), 0);
  }
  const auto claim_racks = [&](const std::vector<int>& racks, int job) {
    if (!constrained) return;
    const JobPlacement& pl = (*placements)[static_cast<std::size_t>(job)];
    const int set_index = set_index_of(pl);
    for (int r : racks) {
      const auto sr = static_cast<std::size_t>(r);
      rack_used[sr] = 1;
      if (pl.rack_exclusive) exclusive_rack[sr] = 1;
      if (set_index >= 0) {
        set_rack[static_cast<std::size_t>(set_index) *
                     static_cast<std::size_t>(R) +
                 sr] = 1;
      }
    }
  };

  Plan& plan = result.plan;
  plan.jobs.resize(J);
  plan.evaluated_candidates = packed.evaluated_candidates;
  std::vector<Seconds> finish(static_cast<std::size_t>(R), 0.0);
  Seconds makespan = 0;
  Seconds total_flow = 0;
  for (std::size_t i = 0; i < trouble_idx.size(); ++i) {
    PlannedJob planned = packed.jobs[i];
    planned.job_index = trouble_idx[i];
    for (int r : planned.racks) {
      finish[static_cast<std::size_t>(r)] = std::max(
          finish[static_cast<std::size_t>(r)], planned.predicted_completion());
    }
    claim_racks(planned.racks, trouble_idx[i]);
    makespan = std::max(makespan, planned.predicted_completion());
    total_flow += planned.predicted_completion() -
                  trouble[i].arrival();
    plan.jobs[static_cast<std::size_t>(trouble_idx[i])] = std::move(planned);
  }

  // Step 3: residual jobs, greedy earliest-completion over every width.
  // Serial by construction; order is (arrival, score desc, index).
  std::sort(residual_idx.begin(), residual_idx.end(), [&](int a, int b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    const Seconds aa = request.jobs[sa].arrival();
    const Seconds ab = request.jobs[sb].arrival();
    if (aa != ab) return aa < ab;
    if (score[sa] != score[sb]) return score[sa] > score[sb];
    return a < b;
  });
  std::vector<Seconds> sorted_finish;
  std::vector<int> rack_order(static_cast<std::size_t>(R));
  int priority = static_cast<int>(trouble_idx.size());
  double step = 0.0;
  for (int j : residual_idx) {
    const auto sj = static_cast<std::size_t>(j);
    const ResponseFunction& job = request.jobs[sj];
    // Candidate racks: everything, or — under constraints — the racks the
    // job's eligibility mask, its anti-affinity set's prior picks and the
    // exclusivity claims leave open.
    rack_order.clear();
    if (constrained) {
      const JobPlacement& pl = (*placements)[sj];
      const int set_index = set_index_of(pl);
      for (int r = 0; r < R; ++r) {
        const auto sr = static_cast<std::size_t>(r);
        if (!pl.eligible[sr]) continue;
        if (exclusive_rack[sr]) continue;
        if (pl.rack_exclusive && rack_used[sr]) continue;
        if (set_index >= 0 &&
            set_rack[static_cast<std::size_t>(set_index) *
                         static_cast<std::size_t>(R) +
                     sr]) {
          continue;
        }
        rack_order.push_back(r);
      }
      require(!rack_order.empty(),
              "placement: job " + std::to_string(j) +
                  " needs 1 racks but only 0 remain eligible after "
                  "placement filters");
    } else {
      rack_order.resize(static_cast<std::size_t>(R));
      std::iota(rack_order.begin(), rack_order.end(), 0);
    }
    const int max_r = static_cast<int>(rack_order.size());
    sorted_finish.clear();
    for (int r : rack_order) {
      sorted_finish.push_back(finish[static_cast<std::size_t>(r)]);
    }
    std::sort(sorted_finish.begin(), sorted_finish.end());
    int best_r = 1;
    Seconds best_completion = 0;
    for (int r = 1; r <= max_r; ++r) {
      const Seconds start = std::max(
          job.arrival(), sorted_finish[static_cast<std::size_t>(r) - 1]);
      const Seconds completion = start + job.at(r);
      if (r == 1 || completion < best_completion) {
        best_completion = completion;
        best_r = r;
      }
      if (trace.at(obs::TraceLevel::kTasks)) {
        trace.instant(obs::TraceTrack::kPlanner, "candidate", "planner", j,
                      clock_at(step),
                      {obs::arg("job", static_cast<double>(j)),
                       obs::arg("racks", static_cast<double>(r)),
                       obs::arg("value", completion)});
      }
      step += 1.0;
    }
    plan.evaluated_candidates += static_cast<std::size_t>(max_r);

    // Take the best_r candidate racks that free up earliest (ties by rack
    // id).
    std::partial_sort(rack_order.begin(), rack_order.begin() + best_r,
                      rack_order.end(), [&](int a, int b) {
                        const Seconds fa =
                            finish[static_cast<std::size_t>(a)];
                        const Seconds fb =
                            finish[static_cast<std::size_t>(b)];
                        if (fa != fb) return fa < fb;
                        return a < b;
                      });
    PlannedJob& planned = plan.jobs[sj];
    planned.job_index = j;
    planned.num_racks = best_r;
    planned.racks.assign(rack_order.begin(), rack_order.begin() + best_r);
    std::sort(planned.racks.begin(), planned.racks.end());
    planned.predicted_latency = job.at(best_r);
    planned.start_time = best_completion - planned.predicted_latency;
    planned.priority = priority++;
    for (int r : planned.racks) {
      finish[static_cast<std::size_t>(r)] = best_completion;
    }
    claim_racks(planned.racks, j);
    makespan = std::max(makespan, best_completion);
    total_flow += best_completion - job.arrival();
    if (trace.at(obs::TraceLevel::kJobs)) {
      trace.instant(obs::TraceTrack::kPlanner, "assign", "planner", j,
                    clock_at(step),
                    {obs::arg("job", static_cast<double>(j)),
                     obs::arg("num_racks", static_cast<double>(best_r)),
                     obs::arg("racks", rack_list_string(planned.racks)),
                     obs::arg("start_s", planned.start_time),
                     obs::arg("latency_s", planned.predicted_latency),
                     obs::arg("priority", static_cast<double>(
                                              planned.priority))});
    }
  }

  plan.predicted_makespan = makespan;
  plan.predicted_avg_completion = total_flow / static_cast<double>(J);
  if (trace.at(obs::TraceLevel::kJobs)) {
    trace.span(obs::TraceTrack::kPlanner, "dagpack", "planner", 0,
               clock_at(0.0), clock_at(step),
               {obs::arg("jobs", static_cast<double>(J)),
                obs::arg("troublesome", static_cast<double>(
                                            trouble_idx.size())),
                obs::arg("candidates", static_cast<double>(
                                           plan.evaluated_candidates)),
                obs::arg("predicted_makespan_s", makespan)});
  }
  return result;
}

}  // namespace corral::plan
